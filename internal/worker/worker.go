// Package worker implements CrowdPlanner's worker selection component
// (paper §IV): familiarity scores from worker profiles and answer history,
// densification of the sparse worker-landmark matrix with Probabilistic
// Matrix Factorization, Gaussian spatial accumulation, response-time
// filtering under an exponential model, and top-k eligible worker selection
// by rated voting.
package worker

import (
	"fmt"
	"math"
	"math/rand"

	"crowdplanner/internal/geo"
	"crowdplanner/internal/landmark"
)

// ID identifies a worker.
type ID int32

// Profile is the registration information the paper collects: home address,
// work place and familiar suburbs.
type Profile struct {
	Home     geo.Point
	Work     geo.Point
	Familiar []geo.Point // additional familiar suburb centers
}

// History tracks a worker's past answers about one landmark.
type History struct {
	Correct int
	Wrong   int
}

// Worker is a crowd worker.
type Worker struct {
	ID      ID
	Profile Profile
	// Lambda is the rate of the exponential response-time distribution
	// (answers per minute); higher responds faster (paper §IV-A).
	Lambda float64
	// Outstanding is the number of tasks currently assigned.
	Outstanding int
	// History maps landmark → answer history (the #correct/#wrong of the
	// familiarity formula).
	History map[landmark.ID]History
	// Reward is the accumulated reward balance (paper's rewarding
	// component).
	Reward float64
}

// RecordAnswer updates the worker's history for a landmark.
func (w *Worker) RecordAnswer(l landmark.ID, correct bool) {
	if w.History == nil {
		w.History = make(map[landmark.ID]History)
	}
	h := w.History[l]
	if correct {
		h.Correct++
	} else {
		h.Wrong++
	}
	w.History[l] = h
}

// ResponseProb returns P(respond within t minutes) = 1 − e^{−λt}, the
// paper's exponential response model.
func (w *Worker) ResponseProb(tMinutes float64) float64 {
	if tMinutes <= 0 || w.Lambda <= 0 {
		return 0
	}
	return 1 - math.Exp(-w.Lambda*tMinutes)
}

// Pool is a population of workers.
type Pool struct {
	Workers []*Worker
}

// Get returns the worker with the given ID, or nil.
func (p *Pool) Get(id ID) *Worker {
	if int(id) < 0 || int(id) >= len(p.Workers) {
		return nil
	}
	return p.Workers[id]
}

// Len returns the pool size.
func (p *Pool) Len() int { return len(p.Workers) }

// GenConfig configures synthetic worker-pool generation.
type GenConfig struct {
	NumWorkers int
	// MeanLambda is the average response rate (answers/minute); individual
	// rates are log-normal around it.
	MeanLambda float64
	// HistoryLandmarks seeds each worker with history on this many nearby
	// landmarks (what the paper accumulates as workers answer tasks).
	HistoryLandmarks int
	// HistoryRadius bounds how far seeded history landmarks may be from the
	// worker's home.
	HistoryRadius float64
	Seed          int64
}

// DefaultGenConfig returns 300 workers with sparse seeded history.
func DefaultGenConfig() GenConfig {
	return GenConfig{
		NumWorkers:       300,
		MeanLambda:       1.0 / 15, // respond in ~15 minutes on average
		HistoryLandmarks: 6,
		HistoryRadius:    1000,
		Seed:             31,
	}
}

// GeneratePool creates workers with homes/workplaces inside bounds and
// seeded answer history on landmarks near home. Workers living near a
// landmark mostly answered correctly about it, wiring the simulation's
// familiarity signal to geography the same way the paper assumes.
func GeneratePool(bounds geo.BBox, lms *landmark.Set, cfg GenConfig) *Pool {
	rng := rand.New(rand.NewSource(cfg.Seed))
	pool := &Pool{}
	randPt := func() geo.Point {
		return geo.Point{
			X: bounds.Min.X + rng.Float64()*bounds.Width(),
			Y: bounds.Min.Y + rng.Float64()*bounds.Height(),
		}
	}
	for i := 0; i < cfg.NumWorkers; i++ {
		w := &Worker{
			ID:      ID(i),
			History: make(map[landmark.ID]History),
			Profile: Profile{
				Home: randPt(),
				Work: randPt(),
			},
		}
		if rng.Float64() < 0.5 {
			w.Profile.Familiar = append(w.Profile.Familiar, randPt())
		}
		// Log-normal response rate around the mean.
		w.Lambda = cfg.MeanLambda * math.Exp(rng.NormFloat64()*0.6)

		near := lms.Within(w.Profile.Home, cfg.HistoryRadius)
		rng.Shuffle(len(near), func(a, b int) { near[a], near[b] = near[b], near[a] })
		for k := 0; k < cfg.HistoryLandmarks && k < len(near); k++ {
			l := near[k]
			answers := 1 + rng.Intn(4)
			for a := 0; a < answers; a++ {
				// Near-home answers are mostly correct.
				w.RecordAnswer(l.ID, rng.Float64() < 0.85)
			}
		}
		pool.Workers = append(pool.Workers, w)
	}
	return pool
}

// String implements fmt.Stringer.
func (w *Worker) String() string {
	return fmt.Sprintf("worker%d(home=%v λ=%.3f)", w.ID, w.Profile.Home, w.Lambda)
}
