package worker

import (
	"math"
	"slices"

	"crowdplanner/internal/geo"
	"crowdplanner/internal/landmark"
)

// FamiliarityConfig carries the constants of the paper's familiarity score
// f_w^l = α·exp{−(d(l,home)+d(l,work)+d(l,fr))/scale} + (1−α)(#correct + β·#wrong).
type FamiliarityConfig struct {
	Alpha float64 // α: weight of profile proximity vs answer history
	Beta  float64 // β < 1: the gain of a wrong answer (still shows exposure)
	// DistScale converts meters to the exponent's unit; the paper leaves
	// units implicit, we use a soft kilometre scale.
	DistScale float64
	// EtaDis (η_dis) is the cutoff beyond which a landmark contributes no
	// knowledge: d(l,·) > EtaDis is treated as +∞ (term vanishes).
	EtaDis float64
}

// DefaultFamiliarityConfig mirrors the paper's qualitative choices. The
// distance constants assume a city a few kilometres across: people know the
// ~800 m around their anchors well and next to nothing beyond.
func DefaultFamiliarityConfig() FamiliarityConfig {
	return FamiliarityConfig{
		Alpha:     0.6,
		Beta:      0.3,
		DistScale: 600,
		EtaDis:    800,
	}
}

// Score computes f_w^l, the raw familiarity of worker w with landmark l.
func Score(w *Worker, l *landmark.Landmark, cfg FamiliarityConfig) float64 {
	// Profile term: distances beyond EtaDis are +∞ (the paper's
	// simplification), which zeroes their exponential contribution. Each
	// profile anchor contributes independently so living near OR working
	// near the landmark is enough.
	var expo float64
	anchors := []geo.Point{w.Profile.Home, w.Profile.Work}
	anchors = append(anchors, w.Profile.Familiar...)
	sum := 0.0
	found := false
	for _, a := range anchors {
		d := geo.Dist(a, l.Pt)
		if d > cfg.EtaDis {
			continue // treated as +∞
		}
		sum += d
		found = true
	}
	if found {
		expo = math.Exp(-sum / cfg.DistScale)
	}
	// History term.
	h := w.History[l.ID]
	hist := float64(h.Correct) + cfg.Beta*float64(h.Wrong)
	return cfg.Alpha*expo + (1-cfg.Alpha)*hist
}

// Matrix is the (sparse) worker×landmark familiarity matrix M of the paper,
// with helpers to densify (PMF) and spatially accumulate it.
type Matrix struct {
	Workers   int
	Landmarks int
	vals      map[int64]float64
}

// NewMatrix creates an empty matrix of the given shape.
func NewMatrix(workers, landmarks int) *Matrix {
	return &Matrix{Workers: workers, Landmarks: landmarks, vals: make(map[int64]float64)}
}

func key(w, l int) int64 { return int64(w)<<32 | int64(uint32(l)) }

// Set stores a familiarity value.
func (m *Matrix) Set(w, l int, v float64) {
	m.vals[key(w, l)] = v
}

// Get returns the value and whether it is observed.
func (m *Matrix) Get(w, l int) (float64, bool) {
	v, ok := m.vals[key(w, l)]
	return v, ok
}

// NonZeros returns the number of observed entries.
func (m *Matrix) NonZeros() int { return len(m.vals) }

// Each iterates over observed entries.
// Each visits every observed entry in ascending (worker, landmark) order.
// The deterministic order matters: FitPMF's gradient descent consumes
// entries in Each order, so map-random iteration would make the fitted
// factors — and every familiarity-dependent decision downstream — differ
// from run to run even under a fixed seed.
func (m *Matrix) Each(fn func(w, l int, v float64)) {
	keys := make([]int64, 0, len(m.vals))
	for k := range m.vals {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	for _, k := range keys {
		fn(int(k>>32), int(uint32(k)), m.vals[k])
	}
}

// BuildMatrix computes the observed familiarity matrix from worker profiles
// and histories. An entry is observed (stored) when it is positive: either
// the landmark is within profile reach or the worker has history on it.
func BuildMatrix(pool *Pool, lms *landmark.Set, cfg FamiliarityConfig) *Matrix {
	m := NewMatrix(pool.Len(), lms.Len())
	for wi, w := range pool.Workers {
		// Profile reach: landmarks within EtaDis of any anchor.
		anchors := []geo.Point{w.Profile.Home, w.Profile.Work}
		anchors = append(anchors, w.Profile.Familiar...)
		seen := map[landmark.ID]bool{}
		for _, a := range anchors {
			for _, l := range lms.Within(a, cfg.EtaDis) {
				if !seen[l.ID] {
					seen[l.ID] = true
					if v := Score(w, l, cfg); v > 0 {
						m.Set(wi, int(l.ID), v)
					}
				}
			}
		}
		//cplint:ordered-irrelevant -- each unseen landmark is Set once under its own (worker, landmark) key; Matrix.Each iterates sorted
		for lid := range w.History {
			if !seen[lid] {
				if l := lms.Get(lid); l != nil {
					if v := Score(w, l, cfg); v > 0 {
						m.Set(wi, int(lid), v)
					}
				}
			}
		}
	}
	return m
}

// Accumulate computes the accumulated familiarity matrix M*: each (w, l)
// entry is the Gaussian-weighted sum of w's familiarity with l and with all
// landmarks within EtaDis of l — knowing a landmark implies knowing its
// surroundings (paper: F_w^l = Σ δ_l' f_w^l', δ ~ N(d | 0, σ₀²), σ₀ =
// η_dis/3).
func Accumulate(m *Matrix, lms *landmark.Set, cfg FamiliarityConfig) *Matrix {
	sigma := cfg.EtaDis / 3
	if sigma <= 0 {
		sigma = 1
	}
	// The paper weights by N(d | 0, σ₀²); we drop the density's 1/(σ√2π)
	// prefactor so δ(0) = 1 and the accumulated scores stay on the same
	// scale as the raw familiarity scores (the prefactor is a uniform
	// rescaling that would otherwise shrink every score by ~3 orders of
	// magnitude and is irrelevant to the rankings the selection uses).
	gauss := func(d float64) float64 {
		return math.Exp(-d * d / (2 * sigma * sigma))
	}
	// Precompute neighbourhood lists per landmark.
	neighbors := make([][]int, lms.Len())
	weights := make([][]float64, lms.Len())
	for li, l := range lms.All() {
		for _, nb := range lms.Within(l.Pt, cfg.EtaDis) {
			neighbors[li] = append(neighbors[li], int(nb.ID))
			weights[li] = append(weights[li], gauss(geo.Dist(l.Pt, nb.Pt)))
		}
	}
	out := NewMatrix(m.Workers, m.Landmarks)
	// Group observed entries per worker for locality.
	perWorker := make([]map[int]float64, m.Workers)
	m.Each(func(w, l int, v float64) {
		if perWorker[w] == nil {
			perWorker[w] = make(map[int]float64)
		}
		perWorker[w][l] = v
	})
	for w, obs := range perWorker {
		if obs == nil {
			continue
		}
		// Sum in ascending landmark order: float addition is not
		// associative, so map-random order would perturb scores by ULPs
		// between otherwise identical runs.
		ls := make([]int, 0, len(obs))
		for l := range obs {
			ls = append(ls, l)
		}
		slices.Sort(ls)
		acc := map[int]float64{}
		for _, l := range ls {
			// w's knowledge of l radiates to all landmarks near l; or
			// equivalently, F(w, lj) sums over observed l within range.
			for i, nb := range neighbors[l] {
				acc[nb] += weights[l][i] * obs[l]
			}
		}
		//cplint:ordered-irrelevant -- key-addressed Set per distinct landmark; Matrix.Each iterates sorted
		for l, v := range acc {
			if v > 0 {
				out.Set(w, l, v)
			}
		}
	}
	return out
}
