// Package popular implements the popular-route mining algorithms the paper
// uses as candidate-route sources alongside web services: MPR (transfer-
// network popularity, after Chen et al. ICDE'11 [4]), MFP (time-period most
// frequent path, after Luo et al. SIGMOD'13 [13]) and LDR (local drivers'
// routes, after Ceikute & Jensen MDM'13 [3]).
//
// Each miner consumes the historical trajectory corpus and proposes the
// route it considers most popular between two nodes at a departure time.
// All three deliberately disagree in edge cases — that disagreement is what
// sends requests to the crowd.
package popular

import (
	"errors"
	"fmt"

	"crowdplanner/internal/roadnet"
	"crowdplanner/internal/routing"
	"crowdplanner/internal/traj"
)

// ErrNotEnoughData is returned when the trajectory corpus cannot support a
// recommendation for the requested OD pair (the sparse-region failure mode
// the paper's introduction warns about).
var ErrNotEnoughData = errors.New("popular: not enough trajectory data for this request")

// Miner proposes a popular route between two nodes at a departure time.
// Support is an algorithm-specific strength-of-evidence score; higher is
// stronger. Implementations return ErrNotEnoughData when the corpus cannot
// answer.
type Miner interface {
	Name() string
	Mine(ds *traj.Dataset, from, to roadnet.NodeID, t routing.SimTime) (route roadnet.Route, support float64, err error)
}

// transferKey is a directed node pair.
type transferKey struct {
	from, to roadnet.NodeID
}

// tripTransitions iterates the consecutive node pairs of a matched route.
func tripTransitions(r roadnet.Route, fn func(from, to roadnet.NodeID)) {
	for i := 1; i < len(r.Nodes); i++ {
		fn(r.Nodes[i-1], r.Nodes[i])
	}
}

// modeRoute returns the most common route in rs (by exact node sequence),
// its vote count, and the total number of votes. Ties break on the smaller
// route string for determinism.
func modeRoute(rs []roadnet.Route) (roadnet.Route, int, int) {
	type bucket struct {
		route roadnet.Route
		votes int
	}
	counts := map[string]*bucket{}
	total := 0
	for _, r := range rs {
		if r.Empty() {
			continue
		}
		total++
		k := r.String()
		if b, ok := counts[k]; ok {
			b.votes++
		} else {
			counts[k] = &bucket{route: r, votes: 1}
		}
	}
	var bestKey string
	var best *bucket
	for k, b := range counts {
		if best == nil || b.votes > best.votes || (b.votes == best.votes && k < bestKey) {
			best, bestKey = b, k
		}
	}
	if best == nil {
		return roadnet.Route{}, 0, 0
	}
	return best.route, best.votes, total
}

// hourDistance returns the circular distance in hours between two
// hours-of-day.
func hourDistance(a, b float64) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	if d > 12 {
		d = 24 - d
	}
	return d
}

// validateOD checks node IDs against the graph.
func validateOD(g *roadnet.Graph, from, to roadnet.NodeID) error {
	n := roadnet.NodeID(g.NumNodes())
	if from < 0 || from >= n || to < 0 || to >= n {
		return fmt.Errorf("popular: node out of range (from=%d to=%d n=%d)", from, to, n)
	}
	return nil
}
