// Package popular implements the popular-route mining algorithms the paper
// uses as candidate-route sources alongside web services: MPR (transfer-
// network popularity, after Chen et al. ICDE'11 [4]), MFP (time-period most
// frequent path, after Luo et al. SIGMOD'13 [13]) and LDR (local drivers'
// routes, after Ceikute & Jensen MDM'13 [3]).
//
// Each miner consumes the historical trajectory corpus and proposes the
// route it considers most popular between two nodes at a departure time.
// All three deliberately disagree in edge cases — that disagreement is what
// sends requests to the crowd.
package popular

import (
	"errors"
	"fmt"
	"sort"

	"crowdplanner/internal/roadnet"
	"crowdplanner/internal/routing"
	"crowdplanner/internal/traj"
)

// ErrNotEnoughData is returned when the trajectory corpus cannot support a
// recommendation for the requested OD pair (the sparse-region failure mode
// the paper's introduction warns about).
var ErrNotEnoughData = errors.New("popular: not enough trajectory data for this request")

// Miner proposes a popular route between two nodes at a departure time.
// Support is an algorithm-specific strength-of-evidence score; higher is
// stronger. Implementations return ErrNotEnoughData when the corpus cannot
// answer.
type Miner interface {
	Name() string
	Mine(ds *traj.Dataset, from, to roadnet.NodeID, t routing.SimTime) (route roadnet.Route, support float64, err error)
}

// tripTransitions iterates the consecutive node pairs of a matched route
// (thin adapter over the shared traj.RouteTransitions definition).
func tripTransitions(r roadnet.Route, fn func(from, to roadnet.NodeID)) {
	traj.RouteTransitions(r, func(t traj.Transition) { fn(t.From, t.To) })
}

// adjacency groups a transition-frequency map's keys by source node, each
// list sorted by destination. The searches relax a node's transitions in
// this order, which (together with the priority queues' node tie-breaks)
// makes tie-broken results independent of map iteration order — the property
// that lets the indexed miners pin bit-identical routes against the scan
// baselines.
func adjacency(freq map[traj.Transition]int) map[roadnet.NodeID][]traj.Transition {
	adj := map[roadnet.NodeID][]traj.Transition{}
	for k := range freq {
		adj[k.From] = append(adj[k.From], k)
	}
	//cplint:ordered-irrelevant -- each bucket is sorted in place; visiting buckets in any order touches disjoint state
	for _, ts := range adj {
		sort.Slice(ts, func(i, j int) bool { return ts[i].To < ts[j].To })
	}
	return adj
}

// scanTransitions is the linear-scan fallback (and benchmark baseline) for
// MPR's transfer network: corpus-wide transition counts and per-node
// outgoing totals. Datasets with the mining index enabled answer the same
// query from Dataset.TransitionTotals without touching the trips.
func scanTransitions(ds *traj.Dataset) (map[traj.Transition]int, map[roadnet.NodeID]int) {
	counts := map[traj.Transition]int{}
	out := map[roadnet.NodeID]int{}
	ds.ForEachTrip(func(trip *traj.Trajectory) {
		tripTransitions(trip.Route, func(a, b roadnet.NodeID) {
			counts[traj.Transition{From: a, To: b}]++
			out[a]++
		})
	})
	return counts, out
}

// scanFootmarks is the linear-scan fallback (and benchmark baseline) for
// MFP's time-period footmark graph: transition frequencies over trips
// departing within window hours (circularly) of hour.
func scanFootmarks(ds *traj.Dataset, hour, window float64) map[traj.Transition]int {
	freq := map[traj.Transition]int{}
	ds.ForEachTrip(func(trip *traj.Trajectory) {
		if hourDistance(trip.Depart.HourOfDay(), hour) > window {
			return
		}
		tripTransitions(trip.Route, func(a, b roadnet.NodeID) {
			freq[traj.Transition{From: a, To: b}]++
		})
	})
	return freq
}

// modeRoute returns the most common route in rs (by exact node sequence),
// its vote count, and the total number of votes. Ties break on the smaller
// route string for determinism. Routes are grouped by a node-sequence hash
// (collisions resolved by exact comparison) so the per-trip cost is one hash
// pass, not a string allocation; the tie-break strings are built lazily and
// only for the handful of distinct routes that actually tie.
func modeRoute(rs []roadnet.Route) (roadnet.Route, int, int) {
	type bucket struct {
		route roadnet.Route
		votes int
		key   string // lazy r.String(), filled on tie-break only
	}
	groups := map[uint64][]*bucket{}
	total := 0
	for _, r := range rs {
		if r.Empty() {
			continue
		}
		total++
		h := hashNodes(r.Nodes)
		var b *bucket
		for _, c := range groups[h] {
			if c.route.Equal(r) {
				b = c
				break
			}
		}
		if b == nil {
			b = &bucket{route: r}
			groups[h] = append(groups[h], b)
		}
		b.votes++
	}
	var best *bucket
	//cplint:ordered-irrelevant -- argmax under the total order (votes desc, route key asc); the winner is visit-order independent
	for _, bs := range groups {
		for _, b := range bs {
			switch {
			case best == nil || b.votes > best.votes:
				best = b
			case b.votes == best.votes:
				if b.key == "" {
					b.key = b.route.String()
				}
				if best.key == "" {
					best.key = best.route.String()
				}
				if b.key < best.key {
					best = b
				}
			}
		}
	}
	if best == nil {
		return roadnet.Route{}, 0, 0
	}
	return best.route, best.votes, total
}

// hashNodes is an FNV-1a hash over a node sequence.
func hashNodes(nodes []roadnet.NodeID) uint64 {
	h := uint64(14695981039346656037)
	for _, n := range nodes {
		h ^= uint64(n)
		h *= 1099511628211
	}
	return h
}

// hourDistance returns the circular distance in hours between two
// hours-of-day. It delegates to the shared traj.HourDist so the miners'
// scan filters and the mining index's boundary-slot filter can never
// disagree trip by trip.
func hourDistance(a, b float64) float64 { return traj.HourDist(a, b) }

// validateOD checks node IDs against the graph.
func validateOD(g *roadnet.Graph, from, to roadnet.NodeID) error {
	n := roadnet.NodeID(g.NumNodes())
	if from < 0 || from >= n || to < 0 || to >= n {
		return fmt.Errorf("popular: node out of range (from=%d to=%d n=%d)", from, to, n)
	}
	return nil
}
