package popular

import (
	"crowdplanner/internal/roadnet"
	"crowdplanner/internal/routing"
	"crowdplanner/internal/traj"
)

// LDR recommends the Local Drivers' Route in the spirit of Ceikute & Jensen
// [3]: drivers who repeatedly travel an OD pair are treated as local experts;
// each expert's own most frequent route casts one vote, and the route with
// the most expert votes wins. When no driver qualifies as an expert the
// miner falls back to the plain mode over matching trips.
type LDR struct {
	// MatchRadius is how far (meters) a trip's endpoints may be from the
	// requested endpoints and still count for this OD pair.
	MatchRadius float64
	// MinDriverTrips is the number of matching trips a driver needs to be
	// considered a local expert.
	MinDriverTrips int
	// MinSupport is the minimum total matching trips below which the miner
	// declares the region too sparse.
	MinSupport int
}

// NewLDR returns an LDR miner with a 300 m endpoint radius.
func NewLDR() *LDR {
	return &LDR{MatchRadius: 300, MinDriverTrips: 2, MinSupport: 2}
}

// Name implements Miner.
func (m *LDR) Name() string { return "LDR" }

// Mine implements Miner.
func (m *LDR) Mine(ds *traj.Dataset, from, to roadnet.NodeID, _ routing.SimTime) (roadnet.Route, float64, error) {
	if err := validateOD(ds.Graph, from, to); err != nil {
		return roadnet.Route{}, 0, err
	}
	trips := ds.TripsBetween(from, to, m.MatchRadius)
	if len(trips) < m.MinSupport {
		return roadnet.Route{}, 0, ErrNotEnoughData
	}

	// Group trips by driver.
	byDriver := map[traj.DriverID][]roadnet.Route{}
	for _, tr := range trips {
		byDriver[tr.Driver] = append(byDriver[tr.Driver], tr.Route)
	}

	// Each local expert votes with their personal most frequent route.
	var expertVotes []roadnet.Route
	//cplint:ordered-irrelevant -- modeRoute's (votes, route-key) argmax is vote-order independent
	for _, routes := range byDriver {
		if len(routes) < m.MinDriverTrips {
			continue
		}
		personal, _, _ := modeRoute(routes)
		if !personal.Empty() {
			expertVotes = append(expertVotes, personal)
		}
	}

	if len(expertVotes) > 0 {
		route, votes, total := modeRoute(expertVotes)
		return route, float64(votes) / float64(total), nil
	}

	// Fallback: mode over all matching trips.
	var all []roadnet.Route
	for _, tr := range trips {
		all = append(all, tr.Route)
	}
	route, votes, total := modeRoute(all)
	if route.Empty() {
		return roadnet.Route{}, 0, ErrNotEnoughData
	}
	return route, float64(votes) / float64(total), nil
}
