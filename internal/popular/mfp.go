package popular

import (
	"container/heap"
	"math"

	"crowdplanner/internal/roadnet"
	"crowdplanner/internal/routing"
	"crowdplanner/internal/traj"
)

// MFP is the time-period Most Frequent Path miner in the spirit of Luo et
// al. [13]: trips departing within a window of the query time contribute
// footmarks to a frequency graph, and the recommended route maximizes the
// minimum edge frequency along the path (the bottleneck), tie-broken by
// shortest length. The paper's conclusion singles out MFP as the strongest
// non-crowd source, which our E1 experiment reproduces.
type MFP struct {
	// WindowHours is the half-width of the departure-time window (circular
	// over the day).
	WindowHours float64
	// MinBottleneck is the minimum acceptable path bottleneck frequency.
	MinBottleneck int
}

// NewMFP returns an MFP miner with a ±2 h window.
func NewMFP() *MFP { return &MFP{WindowHours: 2, MinBottleneck: 2} }

// Name implements Miner.
func (m *MFP) Name() string { return "MFP" }

// Mine implements Miner. On a dataset with the mining index enabled the
// time-window footmark graph is assembled from per-slot aggregates (only
// boundary slots are filtered trip by trip); otherwise every trip is
// scanned — the benchmark baseline. Both produce the same frequency map and
// feed the same deterministic searches.
func (m *MFP) Mine(ds *traj.Dataset, from, to roadnet.NodeID, t routing.SimTime) (roadnet.Route, float64, error) {
	if err := validateOD(ds.Graph, from, to); err != nil {
		return roadnet.Route{}, 0, err
	}
	// Footmark graph restricted to the time window.
	hour := t.HourOfDay()
	freq, ok := ds.FootmarksNearHour(hour, m.WindowHours)
	if !ok {
		freq = scanFootmarks(ds, hour, m.WindowHours)
	}
	if len(freq) == 0 {
		return roadnet.Route{}, 0, ErrNotEnoughData
	}

	bottleneck := m.maxBottleneck(freq, from, to)
	if bottleneck < m.MinBottleneck {
		return roadnet.Route{}, 0, ErrNotEnoughData
	}

	// Among paths achieving the optimal bottleneck, prefer the shortest:
	// Dijkstra by length restricted to edges with freq >= bottleneck.
	route, err := m.shortestAtLeast(ds.Graph, freq, bottleneck, from, to)
	if err != nil {
		return roadnet.Route{}, 0, err
	}
	return route, float64(bottleneck), nil
}

// maxBottleneck computes the maximum over paths from→to of the minimum edge
// frequency (a widest-path search). Returns 0 when unreachable.
func (m *MFP) maxBottleneck(freq map[traj.Transition]int, from, to roadnet.NodeID) int {
	adj := adjacency(freq)
	best := map[roadnet.NodeID]int{from: math.MaxInt}
	done := map[roadnet.NodeID]bool{}
	pq := &widestQueue{{node: from, width: math.MaxInt}}
	heap.Init(pq)
	for pq.Len() > 0 {
		it := heap.Pop(pq).(widestItem)
		if done[it.node] {
			continue
		}
		done[it.node] = true
		if it.node == to {
			return it.width
		}
		for _, k := range adj[it.node] {
			if done[k.To] {
				continue
			}
			w := it.width
			if f := freq[k]; f < w {
				w = f
			}
			if old, ok := best[k.To]; !ok || w > old {
				best[k.To] = w
				heap.Push(pq, widestItem{node: k.To, width: w})
			}
		}
	}
	return 0
}

// shortestAtLeast finds the shortest (by meters) path using only transitions
// with frequency >= minFreq.
func (m *MFP) shortestAtLeast(g *roadnet.Graph, freq map[traj.Transition]int, minFreq int, from, to roadnet.NodeID) (roadnet.Route, error) {
	allowed := map[traj.Transition]bool{}
	//cplint:ordered-irrelevant -- building a membership set; map-to-map copy has no observable order
	for k, f := range freq {
		if f >= minFreq {
			allowed[k] = true
		}
	}
	cost := routing.CostFn(func(e *roadnet.Edge, _ routing.SimTime) float64 {
		if !allowed[traj.Transition{From: e.From, To: e.To}] {
			return math.Inf(1)
		}
		return e.Length
	})
	// routing.ShortestPath treats +Inf edges as unusable because any path
	// through them has infinite cost and the destination check rejects it.
	r, total, err := routing.ShortestPath(g, from, to, cost, 0)
	if err != nil {
		return roadnet.Route{}, ErrNotEnoughData
	}
	if math.IsInf(total, 1) {
		return roadnet.Route{}, ErrNotEnoughData
	}
	return r, nil
}

// widestItem is a priority-queue entry for the widest-path search.
type widestItem struct {
	node  roadnet.NodeID
	width int
}

// widestQueue is a max-heap on width with node tie-break.
type widestQueue []widestItem

func (q widestQueue) Len() int { return len(q) }
func (q widestQueue) Less(i, j int) bool {
	if q[i].width != q[j].width {
		return q[i].width > q[j].width
	}
	return q[i].node < q[j].node
}
func (q widestQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *widestQueue) Push(x any)   { *q = append(*q, x.(widestItem)) }
func (q *widestQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}
