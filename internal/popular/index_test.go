package popular

import (
	"errors"
	"math/rand"
	"testing"

	"crowdplanner/internal/roadnet"
	"crowdplanner/internal/routing"
	"crowdplanner/internal/traj"
)

// The tests in this file pin the mining index's correctness contract: every
// miner must return bit-identical results — route, support, and error — on
// an indexed dataset and on a plain (linear-scan) dataset holding the same
// trips, including trips that arrived through live ingestion. The
// benchmarks at the bottom are the acceptance measurements at 100k trips.

// corpusGraph is the mid-size generated city shared by corpus builders.
func corpusGraph(tb testing.TB) *roadnet.Graph {
	tb.Helper()
	cfg := roadnet.DefaultGenConfig()
	cfg.Cols, cfg.Rows = 12, 12
	cfg.Seed = 41
	return roadnet.Generate(cfg)
}

// routeTemplates computes distinct real paths between spread-out OD pairs —
// cheap to replicate into an arbitrarily large synthetic corpus without
// running the GPS/map-matching pipeline per trip.
func routeTemplates(tb testing.TB, g *roadnet.Graph, n int, seed int64) []roadnet.Route {
	tb.Helper()
	rng := rand.New(rand.NewSource(seed))
	var out []roadnet.Route
	for len(out) < n {
		from := roadnet.NodeID(rng.Intn(g.NumNodes()))
		to := roadnet.NodeID(rng.Intn(g.NumNodes()))
		if from == to {
			continue
		}
		cost := routing.DistanceCost
		if rng.Intn(2) == 0 {
			cost = routing.TravelTimeCost
		}
		r, _, err := routing.ShortestPath(g, from, to, cost, routing.At(0, 8, 0))
		if err != nil || r.Empty() {
			continue
		}
		out = append(out, r)
	}
	return out
}

// syntheticTrips replicates the templates into nTrips trajectories with
// varied drivers and departure times (including fractional hours, so the
// MFP window boundaries get exercised).
func syntheticTrips(templates []roadnet.Route, nTrips int, seed int64) []traj.Trajectory {
	rng := rand.New(rand.NewSource(seed))
	trips := make([]traj.Trajectory, nTrips)
	for i := range trips {
		trips[i] = traj.Trajectory{
			Driver: traj.DriverID(rng.Intn(60)),
			Depart: routing.SimTime(rng.Float64() * 7 * 24 * 60),
			Route:  templates[i%len(templates)],
		}
	}
	return trips
}

// twinDatasets builds two datasets holding identical trips: one linear-scan
// (the baseline) and one with the mining index, where half the trips are
// present at index build time and half arrive through IngestTrips — so the
// equivalence also covers the incremental (copy-on-write) update path.
func twinDatasets(tb testing.TB, g *roadnet.Graph, trips []traj.Trajectory) (scan, indexed *traj.Dataset) {
	tb.Helper()
	scan = &traj.Dataset{Graph: g, Trips: append([]traj.Trajectory(nil), trips...)}
	indexed = &traj.Dataset{Graph: g, Trips: append([]traj.Trajectory(nil), trips[:len(trips)/2]...)}
	indexed.EnableMiningIndex()
	// Ingest the second half in several batches.
	rest := trips[len(trips)/2:]
	for len(rest) > 0 {
		n := len(rest)/3 + 1
		if n > len(rest) {
			n = len(rest)
		}
		indexed.IngestTrips(rest[:n])
		rest = rest[n:]
	}
	return scan, indexed
}

// TestIndexedMinersMatchScan is the correctness anchor: for many random
// queries all three miners must agree exactly between the indexed dataset
// (half built, half ingested) and the linear-scan baseline.
func TestIndexedMinersMatchScan(t *testing.T) {
	g := corpusGraph(t)
	templates := routeTemplates(t, g, 40, 5)
	trips := syntheticTrips(templates, 4000, 6)
	scan, indexed := twinDatasets(t, g, trips)
	if !indexed.MiningIndexed() || scan.MiningIndexed() {
		t.Fatal("dataset index flags wrong")
	}

	miners := []Miner{NewMPR(), NewMFP(), NewLDR()}
	rng := rand.New(rand.NewSource(77))
	nn := g.NumNodes()
	for q := 0; q < 150; q++ {
		var from, to roadnet.NodeID
		if q%2 == 0 {
			// Template endpoints: queries the corpus can actually answer.
			r := templates[rng.Intn(len(templates))]
			from, to = r.Source(), r.Dest()
		} else {
			from = roadnet.NodeID(rng.Intn(nn))
			to = roadnet.NodeID(rng.Intn(nn))
		}
		// Fractional hours probe the MFP slot boundaries.
		tm := routing.SimTime(rng.Float64() * 7 * 24 * 60)
		for _, m := range miners {
			wantR, wantS, wantErr := m.Mine(scan, from, to, tm)
			gotR, gotS, gotErr := m.Mine(indexed, from, to, tm)
			if !errors.Is(gotErr, wantErr) && (gotErr == nil) != (wantErr == nil) {
				t.Fatalf("%s query %d (%d→%d @%v): err %v vs scan %v", m.Name(), q, from, to, tm, gotErr, wantErr)
			}
			if !gotR.Equal(wantR) || gotS != wantS {
				t.Fatalf("%s query %d (%d→%d @%v): route/support %v %v vs scan %v %v",
					m.Name(), q, from, to, tm, gotR, gotS, wantR, wantS)
			}
		}
	}
}

// TestMFPWindowBoundaryExact targets the full-slot/boundary-slot split of
// the footmark index: query hours sitting exactly on slot edges and window
// edges must produce identical frequency graphs, which the bottleneck
// support value surfaces.
func TestMFPWindowBoundaryExact(t *testing.T) {
	g := corpusGraph(t)
	templates := routeTemplates(t, g, 10, 9)
	// Departures packed around slot boundaries and the ±window edge.
	var trips []traj.Trajectory
	d := 0
	for _, h := range []float64{5.999, 6.0, 6.001, 7.5, 7.999, 8.0, 9.999, 10.0, 10.001, 22.0, 23.999, 0.0} {
		for k := 0; k < 4; k++ {
			trips = append(trips, traj.Trajectory{
				Driver: traj.DriverID(d % 7),
				Depart: routing.SimTime(h * 60),
				Route:  templates[d%len(templates)],
			})
			d++
		}
	}
	scan, indexed := twinDatasets(t, g, trips)
	m := NewMFP()
	for _, qh := range []float64{0, 4.0, 4.001, 6.0, 7.999, 8.0, 8.001, 12.0, 23.999, 2.0, 10.0} {
		tm := routing.SimTime(qh * 60)
		for _, r := range templates[:3] {
			wantR, wantS, wantErr := m.Mine(scan, r.Source(), r.Dest(), tm)
			gotR, gotS, gotErr := m.Mine(indexed, r.Source(), r.Dest(), tm)
			if (gotErr == nil) != (wantErr == nil) || gotS != wantS || !gotR.Equal(wantR) {
				t.Fatalf("qh=%v od=%d→%d: indexed (%v,%v,%v) vs scan (%v,%v,%v)",
					qh, r.Source(), r.Dest(), gotR, gotS, gotErr, wantR, wantS, wantErr)
			}
		}
	}
}

// TestMinersDeterministicAcrossRuns: the sorted-adjacency searches must make
// tie-broken results stable run to run on both paths.
func TestMinersDeterministicAcrossRuns(t *testing.T) {
	g := corpusGraph(t)
	templates := routeTemplates(t, g, 20, 15)
	trips := syntheticTrips(templates, 1500, 16)
	scan, indexed := twinDatasets(t, g, trips)
	for _, ds := range []*traj.Dataset{scan, indexed} {
		for _, m := range []Miner{NewMPR(), NewMFP(), NewLDR()} {
			r := templates[0]
			r1, s1, e1 := m.Mine(ds, r.Source(), r.Dest(), routing.At(1, 9, 30))
			r2, s2, e2 := m.Mine(ds, r.Source(), r.Dest(), routing.At(1, 9, 30))
			if (e1 == nil) != (e2 == nil) || s1 != s2 || !r1.Equal(r2) {
				t.Fatalf("%s not deterministic: %v/%v vs %v/%v", m.Name(), r1, s1, r2, s2)
			}
		}
	}
}

// ---- acceptance benchmarks: indexed miners vs linear scan at 100k trips ----

var benchState struct {
	g         *roadnet.Graph
	templates []roadnet.Route
	scan      *traj.Dataset
	indexed   *traj.Dataset
}

func bench100k(b *testing.B) {
	b.Helper()
	if benchState.g == nil {
		g := corpusGraph(b)
		// ~300 distinct ODs at ~330 trips each: large-corpus shape where no
		// single OD pair hoards the trips.
		templates := routeTemplates(b, g, 300, 21)
		trips := syntheticTrips(templates, 100_000, 22)
		benchState.g = g
		benchState.templates = templates
		benchState.scan = &traj.Dataset{Graph: g, Trips: trips}
		benchState.indexed = &traj.Dataset{Graph: g, Trips: append([]traj.Trajectory(nil), trips...)}
		benchState.indexed.EnableMiningIndex()
	}
}

func benchMine(b *testing.B, m Miner, indexed bool) {
	bench100k(b)
	ds := benchState.scan
	if indexed {
		ds = benchState.indexed
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := benchState.templates[i%len(benchState.templates)]
		tm := routing.At(i%7, (8+i)%24, 30)
		_, _, _ = m.Mine(ds, r.Source(), r.Dest(), tm)
	}
}

func BenchmarkMineIndexedMPR100k(b *testing.B) { benchMine(b, NewMPR(), true) }
func BenchmarkMineScanMPR100k(b *testing.B)    { benchMine(b, NewMPR(), false) }
func BenchmarkMineIndexedMFP100k(b *testing.B) { benchMine(b, NewMFP(), true) }
func BenchmarkMineScanMFP100k(b *testing.B)    { benchMine(b, NewMFP(), false) }
func BenchmarkMineIndexedLDR100k(b *testing.B) { benchMine(b, NewLDR(), true) }
func BenchmarkMineScanLDR100k(b *testing.B)    { benchMine(b, NewLDR(), false) }
