package popular

import (
	"container/heap"
	"math"

	"crowdplanner/internal/roadnet"
	"crowdplanner/internal/routing"
	"crowdplanner/internal/traj"
)

// MPR is the Most Popular Route miner in the spirit of Chen et al. [4]: it
// builds a transfer network whose edge weights are the empirical transition
// probabilities observed in the trajectory corpus, defines the popularity of
// a route as the product of its transition probabilities, and returns the
// maximum-popularity route (found as a shortest path under -log probability).
//
// Deviation from [4], documented in DESIGN.md: the original conditions
// transfer probabilities on reachability of the destination via an absorbing
// Markov chain; we use the global transition probabilities, which preserves
// the algorithm's qualitative behaviour (strong on dense corridors, erratic
// where data is sparse) at a fraction of the implementation surface.
type MPR struct {
	// MinTransitions is the minimum number of observed transitions leaving
	// the source for the result to count as supported.
	MinTransitions int
}

// NewMPR returns an MPR miner with default thresholds.
func NewMPR() *MPR { return &MPR{MinTransitions: 2} }

// Name implements Miner.
func (m *MPR) Name() string { return "MPR" }

// mprItem is a priority-queue entry for the transfer-network search.
type mprItem struct {
	node roadnet.NodeID
	cost float64
}

type mprQueue []mprItem

func (q mprQueue) Len() int { return len(q) }
func (q mprQueue) Less(i, j int) bool {
	if q[i].cost != q[j].cost {
		return q[i].cost < q[j].cost
	}
	return q[i].node < q[j].node
}
func (q mprQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *mprQueue) Push(x any)   { *q = append(*q, x.(mprItem)) }
func (q *mprQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// Mine implements Miner. On a dataset with the mining index enabled the
// transfer network comes straight from the index's corpus-wide transition
// totals (kept current by ingestion); otherwise it is rebuilt by scanning
// every trip — the benchmark baseline. Both paths feed the same
// deterministic search and return bit-identical routes.
func (m *MPR) Mine(ds *traj.Dataset, from, to roadnet.NodeID, _ routing.SimTime) (roadnet.Route, float64, error) {
	if err := validateOD(ds.Graph, from, to); err != nil {
		return roadnet.Route{}, 0, err
	}
	counts, outTotals, ok := ds.TransitionTotals()
	if !ok {
		counts, outTotals = scanTransitions(ds)
	}
	if outTotals[from] < m.MinTransitions {
		return roadnet.Route{}, 0, ErrNotEnoughData
	}

	// Transfer-network adjacency, destination-sorted for determinism.
	adj := adjacency(counts)

	// Dijkstra over -log(P) on observed transitions only.
	dist := map[roadnet.NodeID]float64{from: 0}
	prev := map[roadnet.NodeID]roadnet.NodeID{}
	done := map[roadnet.NodeID]bool{}
	pq := &mprQueue{{node: from, cost: 0}}
	heap.Init(pq)

	for pq.Len() > 0 {
		it := heap.Pop(pq).(mprItem)
		if done[it.node] {
			continue
		}
		done[it.node] = true
		if it.node == to {
			break
		}
		for _, k := range adj[it.node] {
			if done[k.To] {
				continue
			}
			p := float64(counts[k]) / float64(outTotals[k.From])
			cost := it.cost - math.Log(p)
			if old, ok := dist[k.To]; !ok || cost < old {
				dist[k.To] = cost
				prev[k.To] = k.From
				heap.Push(pq, mprItem{node: k.To, cost: cost})
			}
		}
	}
	cost, ok := dist[to]
	if !ok || !done[to] {
		return roadnet.Route{}, 0, ErrNotEnoughData
	}
	// Reconstruct.
	var rev []roadnet.NodeID
	for at := to; ; {
		rev = append(rev, at)
		if at == from {
			break
		}
		at = prev[at]
	}
	nodes := make([]roadnet.NodeID, len(rev))
	for i, n := range rev {
		nodes[len(rev)-1-i] = n
	}
	// Popularity = product of transition probabilities = exp(-cost).
	return roadnet.Route{Nodes: nodes}, math.Exp(-cost), nil
}
