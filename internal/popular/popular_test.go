package popular

import (
	"errors"
	"math"
	"testing"

	"crowdplanner/internal/geo"
	"crowdplanner/internal/roadnet"
	"crowdplanner/internal/routing"
	"crowdplanner/internal/traj"
)

// gridGraph builds a small 2-row ladder:
//
//	3 - 4 - 5
//	|   |   |
//	0 - 1 - 2
func ladder() *roadnet.Graph {
	g := roadnet.NewGraph(6, 14)
	g.AddNode(geo.Point{X: 0, Y: 0})
	g.AddNode(geo.Point{X: 100, Y: 0})
	g.AddNode(geo.Point{X: 200, Y: 0})
	g.AddNode(geo.Point{X: 0, Y: 100})
	g.AddNode(geo.Point{X: 100, Y: 100})
	g.AddNode(geo.Point{X: 200, Y: 100})
	g.AddRoad(0, 1, roadnet.Local, 0, 0)
	g.AddRoad(1, 2, roadnet.Local, 0, 0)
	g.AddRoad(3, 4, roadnet.Local, 0, 0)
	g.AddRoad(4, 5, roadnet.Local, 0, 0)
	g.AddRoad(0, 3, roadnet.Local, 0, 0)
	g.AddRoad(1, 4, roadnet.Local, 0, 0)
	g.AddRoad(2, 5, roadnet.Local, 0, 0)
	return g
}

// mkTrip builds a trajectory with only the fields miners read.
func mkTrip(driver traj.DriverID, depart routing.SimTime, nodes ...roadnet.NodeID) traj.Trajectory {
	return traj.Trajectory{Driver: driver, Depart: depart, Route: roadnet.NewRoute(nodes...)}
}

func ladderDataset(trips ...traj.Trajectory) *traj.Dataset {
	return &traj.Dataset{Graph: ladder(), Trips: trips}
}

func TestMPRFollowsDominantFlow(t *testing.T) {
	morning := routing.At(0, 9, 0)
	// 8 trips take the bottom corridor 0→1→2→5, 2 take the top 0→3→4→5.
	var trips []traj.Trajectory
	for i := 0; i < 8; i++ {
		trips = append(trips, mkTrip(traj.DriverID(i), morning, 0, 1, 2, 5))
	}
	for i := 8; i < 10; i++ {
		trips = append(trips, mkTrip(traj.DriverID(i), morning, 0, 3, 4, 5))
	}
	ds := ladderDataset(trips...)
	r, support, err := NewMPR().Mine(ds, 0, 5, morning)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Equal(roadnet.NewRoute(0, 1, 2, 5)) {
		t.Errorf("route = %v, want bottom corridor", r)
	}
	if support <= 0 || support > 1 {
		t.Errorf("support = %v, want in (0,1]", support)
	}
}

func TestMPRPopularityIsProbabilityProduct(t *testing.T) {
	morning := routing.At(0, 9, 0)
	// All flow deterministic except the first hop: 3 of 4 trips go 0→1.
	trips := []traj.Trajectory{
		mkTrip(0, morning, 0, 1, 2),
		mkTrip(1, morning, 0, 1, 2),
		mkTrip(2, morning, 0, 1, 2),
		mkTrip(3, morning, 0, 3),
	}
	ds := ladderDataset(trips...)
	_, support, err := NewMPR().Mine(ds, 0, 2, morning)
	if err != nil {
		t.Fatal(err)
	}
	// P(0→1)=3/4, P(1→2)=1 → popularity 0.75.
	if math.Abs(support-0.75) > 1e-9 {
		t.Errorf("support = %v, want 0.75", support)
	}
}

func TestMPRNotEnoughData(t *testing.T) {
	ds := ladderDataset(mkTrip(0, 0, 0, 1))
	_, _, err := NewMPR().Mine(ds, 0, 5, 0)
	if !errors.Is(err, ErrNotEnoughData) {
		t.Errorf("err = %v, want ErrNotEnoughData", err)
	}
	// Unreachable destination within the transfer network.
	ds2 := ladderDataset(
		mkTrip(0, 0, 0, 1, 2),
		mkTrip(1, 0, 0, 1, 2),
	)
	_, _, err = NewMPR().Mine(ds2, 0, 3, 0)
	if !errors.Is(err, ErrNotEnoughData) {
		t.Errorf("err = %v, want ErrNotEnoughData", err)
	}
	// Out-of-range node is a distinct error.
	_, _, err = NewMPR().Mine(ds2, 0, 99, 0)
	if err == nil || errors.Is(err, ErrNotEnoughData) {
		t.Errorf("out-of-range err = %v", err)
	}
}

func TestMFPUsesTimeWindow(t *testing.T) {
	morning := routing.At(0, 8, 0)
	evening := routing.At(0, 20, 0)
	var trips []traj.Trajectory
	// Mornings use the bottom corridor.
	for i := 0; i < 5; i++ {
		trips = append(trips, mkTrip(traj.DriverID(i), morning, 0, 1, 2, 5))
	}
	// Evenings use the top corridor.
	for i := 5; i < 10; i++ {
		trips = append(trips, mkTrip(traj.DriverID(i), evening, 0, 3, 4, 5))
	}
	ds := ladderDataset(trips...)
	m := NewMFP()

	r, support, err := m.Mine(ds, 0, 5, morning)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Equal(roadnet.NewRoute(0, 1, 2, 5)) {
		t.Errorf("morning route = %v", r)
	}
	if support != 5 {
		t.Errorf("morning bottleneck = %v, want 5", support)
	}

	r, _, err = m.Mine(ds, 0, 5, evening)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Equal(roadnet.NewRoute(0, 3, 4, 5)) {
		t.Errorf("evening route = %v", r)
	}
}

func TestMFPBottleneckSemantics(t *testing.T) {
	tm := routing.At(0, 12, 0)
	// Corridor A (0→1→2→5): frequencies 10, 10, 2  → bottleneck 2.
	// Corridor B (0→3→4→5): frequencies 4, 4, 4    → bottleneck 4.
	var trips []traj.Trajectory
	id := 0
	addN := func(n int, nodes ...roadnet.NodeID) {
		for i := 0; i < n; i++ {
			trips = append(trips, mkTrip(traj.DriverID(id), tm, nodes...))
			id++
		}
	}
	addN(8, 0, 1, 2) // boost A's first two hops without reaching 5
	addN(2, 0, 1, 2, 5)
	addN(4, 0, 3, 4, 5)
	ds := ladderDataset(trips...)
	r, support, err := NewMFP().Mine(ds, 0, 5, tm)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Equal(roadnet.NewRoute(0, 3, 4, 5)) {
		t.Errorf("route = %v, want widest corridor B", r)
	}
	if support != 4 {
		t.Errorf("bottleneck = %v, want 4", support)
	}
}

func TestMFPShortestTieBreak(t *testing.T) {
	tm := routing.At(0, 12, 0)
	// Both corridors have bottleneck 3, but a direct detour adds length:
	// 0→1→2→5 (400m) vs 0→3→4→5 (500m: includes vertical hop first).
	var trips []traj.Trajectory
	for i := 0; i < 3; i++ {
		trips = append(trips, mkTrip(traj.DriverID(i), tm, 0, 1, 2, 5))
		trips = append(trips, mkTrip(traj.DriverID(i+10), tm, 0, 3, 4, 5))
	}
	ds := ladderDataset(trips...)
	r, _, err := NewMFP().Mine(ds, 0, 5, tm)
	if err != nil {
		t.Fatal(err)
	}
	// Bottom corridor: 100+100+100(vertical 2→5) = 300; top: 100(vertical)
	// +100+100 = 300. Equal length; either is acceptable, but the result
	// must be deterministic across runs.
	r2, _, err := NewMFP().Mine(ds, 0, 5, tm)
	if err != nil || !r.Equal(r2) {
		t.Errorf("MFP not deterministic: %v vs %v", r, r2)
	}
}

func TestMFPNotEnoughData(t *testing.T) {
	ds := ladderDataset()
	if _, _, err := NewMFP().Mine(ds, 0, 5, 0); !errors.Is(err, ErrNotEnoughData) {
		t.Errorf("empty corpus err = %v", err)
	}
	// One lone trip is below MinBottleneck=2.
	ds = ladderDataset(mkTrip(0, 0, 0, 1, 2, 5))
	if _, _, err := NewMFP().Mine(ds, 0, 5, 0); !errors.Is(err, ErrNotEnoughData) {
		t.Errorf("sparse corpus err = %v", err)
	}
}

func TestLDRExpertVoting(t *testing.T) {
	tm := routing.At(0, 9, 0)
	var trips []traj.Trajectory
	// Driver 1 is an expert (3 trips) preferring the top corridor.
	for i := 0; i < 3; i++ {
		trips = append(trips, mkTrip(1, tm, 0, 3, 4, 5))
	}
	// Driver 2 is an expert (2 trips) preferring the top corridor too.
	for i := 0; i < 2; i++ {
		trips = append(trips, mkTrip(2, tm, 0, 3, 4, 5))
	}
	// Five one-off drivers each took the bottom corridor once: more raw
	// trips, but no single driver qualifies as an expert.
	for d := traj.DriverID(10); d < 15; d++ {
		trips = append(trips, mkTrip(d, tm, 0, 1, 2, 5))
	}
	ds := ladderDataset(trips...)
	r, support, err := NewLDR().Mine(ds, 0, 5, tm)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Equal(roadnet.NewRoute(0, 3, 4, 5)) {
		t.Errorf("route = %v, want expert-preferred top corridor", r)
	}
	if support != 1 { // both experts voted for it
		t.Errorf("support = %v, want 1", support)
	}
}

func TestLDRFallbackToTripMode(t *testing.T) {
	tm := routing.At(0, 9, 0)
	// No expert drivers: everyone travelled once.
	trips := []traj.Trajectory{
		mkTrip(1, tm, 0, 1, 2, 5),
		mkTrip(2, tm, 0, 1, 2, 5),
		mkTrip(3, tm, 0, 3, 4, 5),
	}
	ds := ladderDataset(trips...)
	r, support, err := NewLDR().Mine(ds, 0, 5, tm)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Equal(roadnet.NewRoute(0, 1, 2, 5)) {
		t.Errorf("route = %v, want trip mode", r)
	}
	if math.Abs(support-2.0/3.0) > 1e-9 {
		t.Errorf("support = %v, want 2/3", support)
	}
}

func TestLDRMatchRadius(t *testing.T) {
	tm := routing.At(0, 9, 0)
	// Trips start at node 3 (100 m from node 0 vertically).
	trips := []traj.Trajectory{
		mkTrip(1, tm, 3, 4, 5),
		mkTrip(2, tm, 3, 4, 5),
	}
	ds := ladderDataset(trips...)
	m := NewLDR()
	m.MatchRadius = 150
	if _, _, err := m.Mine(ds, 0, 5, tm); err != nil {
		t.Errorf("within radius should match: %v", err)
	}
	m.MatchRadius = 50
	if _, _, err := m.Mine(ds, 0, 5, tm); !errors.Is(err, ErrNotEnoughData) {
		t.Errorf("outside radius err = %v", err)
	}
}

func TestLDRNotEnoughData(t *testing.T) {
	ds := ladderDataset()
	if _, _, err := NewLDR().Mine(ds, 0, 5, 0); !errors.Is(err, ErrNotEnoughData) {
		t.Errorf("err = %v", err)
	}
}

func TestMinersOnGeneratedCorpus(t *testing.T) {
	cfg := roadnet.DefaultGenConfig()
	cfg.Cols, cfg.Rows = 10, 10
	g := roadnet.Generate(cfg)
	drivers := traj.NewPopulation(g, traj.PopulationConfig{NumDrivers: 60, Seed: 2, FracCommuter: 1})
	ds := traj.GenerateDataset(g, drivers, traj.DatasetConfig{
		NumODs: 8, TripsPerOD: 20, MinODDistM: 1200, PeakBias: 0.5,
		GPS: traj.DefaultGPSConfig(), Seed: 12,
	})
	// Use the most popular OD from the corpus.
	if len(ds.Trips) == 0 {
		t.Fatal("no trips")
	}
	od := ds.Trips[0].Route
	from, to := od.Source(), od.Dest()
	tm := ds.Trips[0].Depart

	miners := []Miner{NewMPR(), NewMFP(), NewLDR()}
	for _, m := range miners {
		r, support, err := m.Mine(ds, from, to, tm)
		if err != nil {
			t.Errorf("%s: %v", m.Name(), err)
			continue
		}
		if r.Empty() || r.Source() != from || r.Dest() != to {
			t.Errorf("%s: bad endpoints %v", m.Name(), r)
		}
		if !r.Valid(g) {
			t.Errorf("%s: invalid route %v", m.Name(), r)
		}
		if support <= 0 {
			t.Errorf("%s: support = %v", m.Name(), support)
		}
	}
}

func TestHourDistance(t *testing.T) {
	cases := []struct{ a, b, want float64 }{
		{8, 10, 2},
		{23, 1, 2},
		{0, 12, 12},
		{6, 6, 0},
	}
	for _, c := range cases {
		if got := hourDistance(c.a, c.b); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("hourDistance(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestModeRoute(t *testing.T) {
	a := roadnet.NewRoute(0, 1, 2)
	b := roadnet.NewRoute(0, 3, 4)
	r, votes, total := modeRoute([]roadnet.Route{a, a, b})
	if !r.Equal(a) || votes != 2 || total != 3 {
		t.Errorf("modeRoute = %v, %d, %d", r, votes, total)
	}
	r, votes, total = modeRoute(nil)
	if !r.Empty() || votes != 0 || total != 0 {
		t.Error("empty modeRoute should be zero")
	}
	// Empty routes are skipped.
	r, _, total = modeRoute([]roadnet.Route{{}, a})
	if !r.Equal(a) || total != 1 {
		t.Errorf("modeRoute with empties = %v, %d", r, total)
	}
}
