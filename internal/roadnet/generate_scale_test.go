package roadnet

import "testing"

// TestGenerateContinentScale pins the ≥1M-node generation path that the
// routing scale sweep depends on: a 1024×1024 city must come out with over a
// million nodes, a single connected component, and every road class
// represented. Gated behind -short because generating and BFS-walking a
// million-node graph takes a few seconds.
func TestGenerateContinentScale(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping million-node generation in -short mode")
	}
	cfg := DefaultGenConfig()
	cfg.Cols, cfg.Rows = 1024, 1024
	g := Generate(cfg)
	if g.NumNodes() < 1_000_000 {
		t.Fatalf("nodes = %d, want >= 1M", g.NumNodes())
	}
	if g.NumEdges() < 2*g.NumNodes() {
		t.Fatalf("edges = %d for %d nodes; grid should average well over 2 per node",
			g.NumEdges(), g.NumNodes())
	}
	have := map[RoadClass]int{}
	for i := 0; i < g.NumEdges(); i++ {
		have[g.Edge(EdgeID(i)).Class]++
	}
	for _, c := range []RoadClass{Local, Arterial, Highway, Collector} {
		if have[c] == 0 {
			t.Errorf("no %v edges generated at scale", c)
		}
	}
	// BFS from node 0 must reach every node — unreachable pockets would
	// poison the OD sampling and the landmark one-to-all sweeps.
	visited := make([]bool, g.NumNodes())
	queue := make([]NodeID, 0, 1024)
	queue = append(queue, 0)
	visited[0] = true
	count := 1
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, eid := range g.Out(n) {
			to := g.Edge(eid).To
			if !visited[to] {
				visited[to] = true
				count++
				queue = append(queue, to)
			}
		}
	}
	if count != g.NumNodes() {
		t.Errorf("connected component = %d of %d nodes", count, g.NumNodes())
	}
}
