// Package roadnet models the road network substrate on which CrowdPlanner
// operates: a graph of intersections (nodes) and road segments (edges) with
// per-segment attributes (length, road class, speed limit, traffic lights).
//
// The paper evaluates on the real road network of a city; this package
// additionally provides a deterministic synthetic city generator (see
// Generate) with the same qualitative structure: a jittered grid of local
// streets, arterial corridors, a highway ring, and random gaps. See DESIGN.md
// for the substitution rationale.
package roadnet

import (
	"fmt"
	"math"

	"crowdplanner/internal/geo"
)

// NodeID identifies an intersection in a Graph. IDs are dense: valid IDs are
// 0..NumNodes-1.
type NodeID int32

// EdgeID identifies a directed edge in a Graph. IDs are dense.
type EdgeID int32

// RoadClass categorizes a road segment. Higher classes are faster and more
// comfortable to drive.
type RoadClass uint8

// Road classes from slowest/smallest to fastest/largest.
const (
	Local RoadClass = iota
	Collector
	Arterial
	Highway
)

// String implements fmt.Stringer.
func (c RoadClass) String() string {
	switch c {
	case Local:
		return "local"
	case Collector:
		return "collector"
	case Arterial:
		return "arterial"
	case Highway:
		return "highway"
	default:
		return fmt.Sprintf("RoadClass(%d)", uint8(c))
	}
}

// DefaultSpeedKmh returns the default speed limit for a road class, in km/h.
func (c RoadClass) DefaultSpeedKmh() float64 {
	switch c {
	case Local:
		return 40
	case Collector:
		return 50
	case Arterial:
		return 60
	case Highway:
		return 100
	default:
		return 40
	}
}

// Node is a road intersection.
type Node struct {
	ID NodeID
	Pt geo.Point
}

// Edge is a directed road segment between two intersections.
type Edge struct {
	ID       EdgeID
	From     NodeID
	To       NodeID
	Length   float64 // meters
	Class    RoadClass
	SpeedKmh float64 // speed limit
	Lights   int     // traffic lights encountered along this segment (0 or 1 typically)
}

// BaseTravelMinutes returns the free-flow traversal time of the edge in
// minutes, ignoring congestion.
func (e *Edge) BaseTravelMinutes() float64 {
	if e.SpeedKmh <= 0 {
		return math.Inf(1)
	}
	return e.Length / 1000 / e.SpeedKmh * 60
}

// Graph is a directed road network. Construct with NewGraph and AddNode /
// AddEdge, or via Generate. Graphs are immutable after construction by
// convention: no method mutates a graph once routing begins.
type Graph struct {
	nodes []Node
	edges []Edge
	out   [][]EdgeID // out[n] lists edges leaving node n
	in    [][]EdgeID // in[n] lists edges entering node n

	index *geo.Grid // nearest-node index, built lazily by EnsureIndex

	// Heuristic bounds tracked at construction, so goal-directed search
	// stays admissible for any graph however it was built (generator,
	// serialization, embedder code). See MaxSpeedKmh and MinLengthRatio.
	maxSpeedKmh float64
	minLenRatio float64
}

// NewGraph returns an empty graph with capacity hints.
func NewGraph(nodeHint, edgeHint int) *Graph {
	return &Graph{
		nodes:       make([]Node, 0, nodeHint),
		edges:       make([]Edge, 0, edgeHint),
		out:         make([][]EdgeID, 0, nodeHint),
		in:          make([][]EdgeID, 0, nodeHint),
		minLenRatio: 1,
	}
}

// AddNode appends a node at p and returns its ID.
func (g *Graph) AddNode(p geo.Point) NodeID {
	id := NodeID(len(g.nodes))
	g.nodes = append(g.nodes, Node{ID: id, Pt: p})
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	g.index = nil
	return id
}

// AddEdge appends a directed edge from -> to with the given attributes and
// returns its ID. Length 0 means "compute from node coordinates".
func (g *Graph) AddEdge(from, to NodeID, class RoadClass, speedKmh float64, lights int, length float64) EdgeID {
	straight := geo.Dist(g.nodes[from].Pt, g.nodes[to].Pt)
	if length <= 0 {
		length = straight
	}
	if speedKmh <= 0 {
		speedKmh = class.DefaultSpeedKmh()
	}
	if speedKmh > g.maxSpeedKmh {
		g.maxSpeedKmh = speedKmh
	}
	if straight > 0 {
		if r := length / straight; r < g.minLenRatio {
			g.minLenRatio = r
		}
	}
	id := EdgeID(len(g.edges))
	g.edges = append(g.edges, Edge{
		ID: id, From: from, To: to,
		Length: length, Class: class, SpeedKmh: speedKmh, Lights: lights,
	})
	g.out[from] = append(g.out[from], id)
	g.in[to] = append(g.in[to], id)
	return id
}

// AddRoad adds a bidirectional road (two directed edges) and returns both
// edge IDs.
func (g *Graph) AddRoad(a, b NodeID, class RoadClass, speedKmh float64, lights int) (ab, ba EdgeID) {
	ab = g.AddEdge(a, b, class, speedKmh, lights, 0)
	ba = g.AddEdge(b, a, class, speedKmh, lights, 0)
	return ab, ba
}

// MaxSpeedKmh returns the highest speed limit among the graph's edges (0
// for a graph with no edges). Goal-directed search derives travel-time
// heuristic bounds from it, so the heuristic stays admissible even when
// edges exceed the class-default speeds.
func (g *Graph) MaxSpeedKmh() float64 { return g.maxSpeedKmh }

// MinLengthRatio returns the minimum, over all edges, of edge length divided
// by the straight-line distance between its endpoints, capped at 1 (1 for a
// graph with no edges; 0 for a zero-value Graph not built via NewGraph,
// which disables distance heuristics rather than risking inadmissibility).
// Edges are normally at least as long as straight-line (curvy roads), but
// AddEdge accepts arbitrary lengths; scaling heuristics by this ratio keeps
// them admissible when an edge is shorter than the crow flies.
func (g *Graph) MinLengthRatio() float64 { return g.minLenRatio }

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns the number of directed edges.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Node returns the node with the given ID.
func (g *Graph) Node(id NodeID) *Node { return &g.nodes[id] }

// Edge returns the edge with the given ID.
func (g *Graph) Edge(id EdgeID) *Edge { return &g.edges[id] }

// Out returns the IDs of edges leaving n. The returned slice must not be
// modified.
func (g *Graph) Out(n NodeID) []EdgeID { return g.out[n] }

// In returns the IDs of edges entering n. The returned slice must not be
// modified.
func (g *Graph) In(n NodeID) []EdgeID { return g.in[n] }

// FindEdge returns the ID of an edge from -> to, if one exists.
func (g *Graph) FindEdge(from, to NodeID) (EdgeID, bool) {
	for _, eid := range g.out[from] {
		if g.edges[eid].To == to {
			return eid, true
		}
	}
	return 0, false
}

// BBox returns the bounding box of all node coordinates. It panics on an
// empty graph.
func (g *Graph) BBox() geo.BBox {
	if len(g.nodes) == 0 {
		panic("roadnet: BBox of empty graph")
	}
	b := geo.NewBBox(g.nodes[0].Pt)
	for _, n := range g.nodes[1:] {
		b = b.Extend(n.Pt)
	}
	return b
}

// EnsureIndex builds the nearest-node spatial index if not yet built.
func (g *Graph) EnsureIndex() {
	if g.index != nil || len(g.nodes) == 0 {
		return
	}
	b := g.BBox().Buffer(1)
	cell := math.Max(b.Width(), b.Height()) / 64
	if cell <= 0 {
		cell = 1
	}
	idx := geo.NewGrid(b, cell)
	for _, n := range g.nodes {
		idx.Insert(int32(n.ID), n.Pt)
	}
	g.index = idx
}

// NearestNode returns the node closest to p. ok is false for an empty graph.
func (g *Graph) NearestNode(p geo.Point) (NodeID, bool) {
	if len(g.nodes) == 0 {
		return 0, false
	}
	g.EnsureIndex()
	id, _, ok := g.index.Nearest(p)
	return NodeID(id), ok
}

// NodesWithin returns all nodes within radius r of p.
func (g *Graph) NodesWithin(p geo.Point, r float64) []NodeID {
	if len(g.nodes) == 0 {
		return nil
	}
	g.EnsureIndex()
	raw := g.index.Within(p, r)
	out := make([]NodeID, len(raw))
	for i, id := range raw {
		out[i] = NodeID(id)
	}
	return out
}
