package roadnet

import (
	"encoding/json"
	"fmt"
	"io"

	"crowdplanner/internal/geo"
)

// jsonGraph is the wire form of a Graph.
type jsonGraph struct {
	Nodes []jsonNode `json:"nodes"`
	Edges []jsonEdge `json:"edges"`
}

type jsonNode struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

type jsonEdge struct {
	From   NodeID    `json:"from"`
	To     NodeID    `json:"to"`
	Length float64   `json:"len"`
	Class  RoadClass `json:"class"`
	Speed  float64   `json:"speed"`
	Lights int       `json:"lights"`
}

// Write serializes the graph as JSON. The format is stable and versioned
// implicitly by field names.
func (g *Graph) Write(w io.Writer) error {
	jg := jsonGraph{
		Nodes: make([]jsonNode, len(g.nodes)),
		Edges: make([]jsonEdge, len(g.edges)),
	}
	for i, n := range g.nodes {
		jg.Nodes[i] = jsonNode{X: n.Pt.X, Y: n.Pt.Y}
	}
	for i, e := range g.edges {
		jg.Edges[i] = jsonEdge{
			From: e.From, To: e.To, Length: e.Length,
			Class: e.Class, Speed: e.SpeedKmh, Lights: e.Lights,
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(jg)
}

// ReadFrom deserializes a graph written by Write.
func ReadFrom(r io.Reader) (*Graph, error) {
	var jg jsonGraph
	dec := json.NewDecoder(r)
	if err := dec.Decode(&jg); err != nil {
		return nil, fmt.Errorf("roadnet: decode graph: %w", err)
	}
	g := NewGraph(len(jg.Nodes), len(jg.Edges))
	for _, n := range jg.Nodes {
		g.AddNode(geo.Point{X: n.X, Y: n.Y})
	}
	for i, e := range jg.Edges {
		if int(e.From) >= len(jg.Nodes) || int(e.To) >= len(jg.Nodes) || e.From < 0 || e.To < 0 {
			return nil, fmt.Errorf("roadnet: edge %d references unknown node", i)
		}
		g.AddEdge(e.From, e.To, e.Class, e.Speed, e.Lights, e.Length)
	}
	return g, nil
}
