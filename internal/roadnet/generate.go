package roadnet

import (
	"math/rand"

	"crowdplanner/internal/geo"
)

// GenConfig configures the synthetic city generator. The zero value is not
// useful; start from DefaultGenConfig.
type GenConfig struct {
	Cols, Rows   int     // grid dimensions in intersections
	Spacing      float64 // meters between adjacent intersections
	Jitter       float64 // max random perturbation of node positions, meters
	ArterialEach int     // every k-th row/column is an arterial; 0 disables
	HighwayRing  bool    // add a high-speed ring around the city
	RemoveProb   float64 // probability of deleting a local road segment
	LightProb    float64 // probability a local/collector segment has a light
	ArtLightProb float64 // probability an arterial segment has a light
	Seed         int64
}

// DefaultGenConfig returns a mid-size city: a 20x20 jittered grid (400
// intersections) with arterials every 5 blocks and a highway ring.
func DefaultGenConfig() GenConfig {
	return GenConfig{
		Cols: 20, Rows: 20,
		Spacing:      250,
		Jitter:       30,
		ArterialEach: 5,
		HighwayRing:  true,
		RemoveProb:   0.06,
		LightProb:    0.35,
		ArtLightProb: 0.6,
		Seed:         1,
	}
}

// Generate builds a synthetic city road network. The generated network is
// connected (removal never disconnects the grid: segments adjacent to the
// border or on arterials are kept) and deterministic for a given config.
func Generate(cfg GenConfig) *Graph {
	if cfg.Cols < 2 || cfg.Rows < 2 {
		panic("roadnet: Generate requires at least a 2x2 grid")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := NewGraph(cfg.Cols*cfg.Rows+2*(cfg.Cols+cfg.Rows), cfg.Cols*cfg.Rows*4)

	// Lay out the jittered grid of intersections.
	ids := make([][]NodeID, cfg.Rows)
	for r := 0; r < cfg.Rows; r++ {
		ids[r] = make([]NodeID, cfg.Cols)
		for c := 0; c < cfg.Cols; c++ {
			jx := (rng.Float64()*2 - 1) * cfg.Jitter
			jy := (rng.Float64()*2 - 1) * cfg.Jitter
			p := geo.Point{
				X: float64(c)*cfg.Spacing + jx,
				Y: float64(r)*cfg.Spacing + jy,
			}
			ids[r][c] = g.AddNode(p)
		}
	}

	isArtRow := func(r int) bool {
		return cfg.ArterialEach > 0 && r%cfg.ArterialEach == 0
	}
	isArtCol := func(c int) bool {
		return cfg.ArterialEach > 0 && c%cfg.ArterialEach == 0
	}

	type cut struct{ a, b NodeID }
	var cuts []cut
	addSegment := func(a, b NodeID, art bool, border bool) {
		class := Local
		lightP := cfg.LightProb
		if art {
			class = Arterial
			lightP = cfg.ArtLightProb
		}
		// Local segments in the interior may be removed to create the gaps,
		// dead ends and detours real cities have. Border and arterial
		// segments always survive, which keeps removal local — but does NOT
		// by itself keep the graph connected: an interior node off the
		// arterial grid loses all four segments with probability
		// RemoveProb^4, which is negligible on toy grids and near-certain
		// somewhere in a million-node city. Removed segments are recorded
		// and the reconnect pass below restores just enough of them to keep
		// one component.
		if !art && !border && rng.Float64() < cfg.RemoveProb {
			cuts = append(cuts, cut{a, b})
			return
		}
		lights := 0
		if rng.Float64() < lightP {
			lights = 1
		}
		g.AddRoad(a, b, class, 0, lights)
	}

	// Horizontal segments.
	for r := 0; r < cfg.Rows; r++ {
		for c := 0; c+1 < cfg.Cols; c++ {
			border := r == 0 || r == cfg.Rows-1
			addSegment(ids[r][c], ids[r][c+1], isArtRow(r), border)
		}
	}
	// Vertical segments.
	for r := 0; r+1 < cfg.Rows; r++ {
		for c := 0; c < cfg.Cols; c++ {
			border := c == 0 || c == cfg.Cols-1
			addSegment(ids[r][c], ids[r+1][c], isArtCol(c), border)
		}
	}

	if cfg.HighwayRing {
		addHighwayRing(g, ids, cfg)
	}

	// Reconnect pass: restore removed segments that bridge components, in
	// the deterministic order they were cut. Re-adding every cut would
	// restore the full grid (which is connected), so scanning them once and
	// keeping only the bridges provably leaves a single component while
	// preserving almost all of the gaps. rng draws here follow all other
	// draws, so grids that were already connected generate byte-identically
	// to the pre-reconnect generator.
	uf := newUnionFind(g.NumNodes())
	for i := 0; i < g.NumEdges(); i++ {
		e := g.Edge(EdgeID(i))
		uf.union(int(e.From), int(e.To))
	}
	for _, c := range cuts {
		if uf.find(int(c.a)) == uf.find(int(c.b)) {
			continue
		}
		uf.union(int(c.a), int(c.b))
		lights := 0
		if rng.Float64() < cfg.LightProb {
			lights = 1
		}
		g.AddRoad(c.a, c.b, Local, 0, lights)
	}
	return g
}

// unionFind is a plain disjoint-set forest (path halving, union by size)
// used by Generate's reconnect pass.
type unionFind struct {
	parent []int32
	size   []int32
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int32, n), size: make([]int32, n)}
	for i := range uf.parent {
		uf.parent[i] = int32(i)
		uf.size[i] = 1
	}
	return uf
}

func (uf *unionFind) find(x int) int32 {
	r := int32(x)
	for uf.parent[r] != r {
		uf.parent[r] = uf.parent[uf.parent[r]]
		r = uf.parent[r]
	}
	return r
}

func (uf *unionFind) union(a, b int) {
	ra, rb := uf.find(a), uf.find(b)
	if ra == rb {
		return
	}
	if uf.size[ra] < uf.size[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
	uf.size[ra] += uf.size[rb]
}

// addHighwayRing surrounds the grid with a rectangular highway connected to
// the border arterial intersections via short ramps.
func addHighwayRing(g *Graph, ids [][]NodeID, cfg GenConfig) {
	rows, cols := len(ids), len(ids[0])
	off := cfg.Spacing * 1.2

	// Ring nodes alongside each border intersection that sits on an arterial
	// (or the corners), connected consecutively.
	type ramp struct {
		ring NodeID
		city NodeID
	}
	var ramps []ramp
	addRing := func(city NodeID, dx, dy float64) {
		p := g.Node(city).Pt
		ringID := g.AddNode(geo.Point{X: p.X + dx, Y: p.Y + dy})
		ramps = append(ramps, ramp{ring: ringID, city: city})
	}
	every := cfg.ArterialEach
	if every <= 0 {
		every = 5
	}
	// Ramp positions along one side: every k-th intersection plus always the
	// far corner, so consecutive ring nodes trace the rectangle instead of
	// cutting diagonally across the city.
	positions := func(n int) []int {
		var ps []int
		for i := 0; i < n; i += every {
			ps = append(ps, i)
		}
		if ps[len(ps)-1] != n-1 {
			ps = append(ps, n-1)
		}
		return ps
	}
	reverse := func(ps []int) []int {
		out := make([]int, len(ps))
		for i, v := range ps {
			out[len(ps)-1-i] = v
		}
		return out
	}
	// Bottom edge (left→right), right edge (bottom→top), top (right→left),
	// left (top→bottom) to form a loop in order.
	for _, c := range positions(cols) {
		addRing(ids[0][c], 0, -off)
	}
	for _, r := range positions(rows) {
		addRing(ids[r][cols-1], off, 0)
	}
	for _, c := range reverse(positions(cols)) {
		addRing(ids[rows-1][c], 0, off)
	}
	for _, r := range reverse(positions(rows)) {
		addRing(ids[r][0], -off, 0)
	}
	for i := range ramps {
		next := ramps[(i+1)%len(ramps)]
		g.AddRoad(ramps[i].ring, next.ring, Highway, 0, 0)
		g.AddRoad(ramps[i].ring, ramps[i].city, Collector, 0, 0)
	}
}
