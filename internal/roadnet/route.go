package roadnet

import (
	"fmt"
	"strings"

	"crowdplanner/internal/geo"
)

// Route is a continuous travelling path, represented — exactly as in the
// paper's Definition 1 — by the sequence of consecutive road intersections
// from source to destination.
type Route struct {
	Nodes []NodeID
}

// NewRoute returns a route over the given nodes. The caller retains
// ownership of the slice.
func NewRoute(nodes ...NodeID) Route { return Route{Nodes: nodes} }

// Empty reports whether the route has fewer than 2 nodes (no edges).
func (r Route) Empty() bool { return len(r.Nodes) < 2 }

// Source returns the first node; it panics on a node-less route.
func (r Route) Source() NodeID { return r.Nodes[0] }

// Dest returns the last node; it panics on a node-less route.
func (r Route) Dest() NodeID { return r.Nodes[len(r.Nodes)-1] }

// String implements fmt.Stringer.
func (r Route) String() string {
	var sb strings.Builder
	sb.WriteByte('[')
	for i, n := range r.Nodes {
		if i > 0 {
			sb.WriteString("→")
		}
		fmt.Fprintf(&sb, "%d", n)
	}
	sb.WriteByte(']')
	return sb.String()
}

// Equal reports whether two routes visit exactly the same node sequence.
func (r Route) Equal(o Route) bool {
	if len(r.Nodes) != len(o.Nodes) {
		return false
	}
	for i := range r.Nodes {
		if r.Nodes[i] != o.Nodes[i] {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of the route.
func (r Route) Clone() Route {
	n := make([]NodeID, len(r.Nodes))
	copy(n, r.Nodes)
	return Route{Nodes: n}
}

// Valid reports whether every consecutive node pair is connected by an edge
// in g and the route has at least one edge.
func (r Route) Valid(g *Graph) bool {
	if r.Empty() {
		return false
	}
	for i := 1; i < len(r.Nodes); i++ {
		if _, ok := g.FindEdge(r.Nodes[i-1], r.Nodes[i]); !ok {
			return false
		}
	}
	return true
}

// Edges returns the edge IDs traversed by the route in order. Missing edges
// are reported as an error.
func (r Route) Edges(g *Graph) ([]EdgeID, error) {
	if r.Empty() {
		return nil, fmt.Errorf("roadnet: route %v has no edges", r)
	}
	out := make([]EdgeID, 0, len(r.Nodes)-1)
	for i := 1; i < len(r.Nodes); i++ {
		eid, ok := g.FindEdge(r.Nodes[i-1], r.Nodes[i])
		if !ok {
			return nil, fmt.Errorf("roadnet: no edge %d→%d in route", r.Nodes[i-1], r.Nodes[i])
		}
		out = append(out, eid)
	}
	return out, nil
}

// Length returns the total length of the route in meters. Node pairs without
// a connecting edge contribute straight-line distance; this makes Length
// total and safe for slightly out-of-sync data.
func (r Route) Length(g *Graph) float64 {
	var total float64
	for i := 1; i < len(r.Nodes); i++ {
		if eid, ok := g.FindEdge(r.Nodes[i-1], r.Nodes[i]); ok {
			total += g.Edge(eid).Length
		} else {
			total += geo.Dist(g.Node(r.Nodes[i-1]).Pt, g.Node(r.Nodes[i]).Pt)
		}
	}
	return total
}

// Lights returns the number of traffic lights encountered along the route.
func (r Route) Lights(g *Graph) int {
	var total int
	for i := 1; i < len(r.Nodes); i++ {
		if eid, ok := g.FindEdge(r.Nodes[i-1], r.Nodes[i]); ok {
			total += g.Edge(eid).Lights
		}
	}
	return total
}

// Polyline returns the geometry of the route.
func (r Route) Polyline(g *Graph) geo.Polyline {
	pl := make(geo.Polyline, len(r.Nodes))
	for i, n := range r.Nodes {
		pl[i] = g.Node(n).Pt
	}
	return pl
}

// edgeSet returns the set of undirected node pairs traversed, encoded as
// int64 keys. Used by similarity.
func (r Route) edgeSet() map[int64]struct{} {
	s := make(map[int64]struct{}, len(r.Nodes))
	for i := 1; i < len(r.Nodes); i++ {
		a, b := r.Nodes[i-1], r.Nodes[i]
		if a > b {
			a, b = b, a
		}
		s[int64(a)<<32|int64(uint32(b))] = struct{}{}
	}
	return s
}

// Similarity returns the Jaccard similarity of the undirected edge sets of
// the two routes, in [0,1]. Two empty routes are fully similar.
func (r Route) Similarity(o Route) float64 {
	a := r.edgeSet()
	b := o.edgeSet()
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	inter := 0
	for k := range a {
		if _, ok := b[k]; ok {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}
