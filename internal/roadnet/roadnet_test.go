package roadnet

import (
	"bytes"
	"math"
	"testing"

	"crowdplanner/internal/geo"
)

// line builds a simple path graph 0-1-2-...-(n-1) spaced 100m apart.
func line(n int) *Graph {
	g := NewGraph(n, 2*(n-1))
	for i := 0; i < n; i++ {
		g.AddNode(geo.Point{X: float64(i) * 100, Y: 0})
	}
	for i := 0; i+1 < n; i++ {
		g.AddRoad(NodeID(i), NodeID(i+1), Local, 0, 0)
	}
	return g
}

func TestAddNodeEdge(t *testing.T) {
	g := NewGraph(0, 0)
	a := g.AddNode(geo.Point{X: 0, Y: 0})
	b := g.AddNode(geo.Point{X: 300, Y: 400})
	if a != 0 || b != 1 {
		t.Fatalf("ids = %d,%d", a, b)
	}
	eid := g.AddEdge(a, b, Arterial, 0, 1, 0)
	e := g.Edge(eid)
	if e.Length != 500 {
		t.Errorf("auto length = %v, want 500", e.Length)
	}
	if e.SpeedKmh != Arterial.DefaultSpeedKmh() {
		t.Errorf("auto speed = %v", e.SpeedKmh)
	}
	if e.Lights != 1 {
		t.Errorf("lights = %d", e.Lights)
	}
	if got := len(g.Out(a)); got != 1 {
		t.Errorf("out(a) = %d", got)
	}
	if got := len(g.In(b)); got != 1 {
		t.Errorf("in(b) = %d", got)
	}
	if g.NumNodes() != 2 || g.NumEdges() != 1 {
		t.Errorf("counts = %d,%d", g.NumNodes(), g.NumEdges())
	}
}

func TestAddRoadBidirectional(t *testing.T) {
	g := line(3)
	if _, ok := g.FindEdge(0, 1); !ok {
		t.Error("edge 0→1 missing")
	}
	if _, ok := g.FindEdge(1, 0); !ok {
		t.Error("edge 1→0 missing")
	}
	if _, ok := g.FindEdge(0, 2); ok {
		t.Error("edge 0→2 should not exist")
	}
}

func TestBaseTravelMinutes(t *testing.T) {
	e := Edge{Length: 1000, SpeedKmh: 60}
	if got := e.BaseTravelMinutes(); math.Abs(got-1) > 1e-9 {
		t.Errorf("1km @60 = %v min, want 1", got)
	}
	bad := Edge{Length: 1000, SpeedKmh: 0}
	if !math.IsInf(bad.BaseTravelMinutes(), 1) {
		t.Error("zero speed should be +Inf")
	}
}

func TestRoadClassString(t *testing.T) {
	cases := map[RoadClass]string{
		Local: "local", Collector: "collector", Arterial: "arterial",
		Highway: "highway", RoadClass(9): "RoadClass(9)",
	}
	for c, want := range cases {
		if got := c.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", c, got, want)
		}
	}
}

func TestNearestNode(t *testing.T) {
	g := line(10)
	id, ok := g.NearestNode(geo.Point{X: 420, Y: 10})
	if !ok || id != 4 {
		t.Errorf("NearestNode = %d, %v", id, ok)
	}
	id, ok = g.NearestNode(geo.Point{X: -1000, Y: 0})
	if !ok || id != 0 {
		t.Errorf("NearestNode far = %d, %v", id, ok)
	}
	empty := NewGraph(0, 0)
	if _, ok := empty.NearestNode(geo.Point{}); ok {
		t.Error("empty graph should report !ok")
	}
}

func TestNodesWithin(t *testing.T) {
	g := line(10)
	got := g.NodesWithin(geo.Point{X: 200, Y: 0}, 150)
	want := map[NodeID]bool{1: true, 2: true, 3: true}
	if len(got) != len(want) {
		t.Fatalf("NodesWithin = %v", got)
	}
	for _, id := range got {
		if !want[id] {
			t.Fatalf("unexpected node %d in %v", id, got)
		}
	}
}

func TestRouteBasics(t *testing.T) {
	g := line(5)
	r := NewRoute(0, 1, 2, 3)
	if r.Empty() {
		t.Error("route should not be empty")
	}
	if r.Source() != 0 || r.Dest() != 3 {
		t.Errorf("src/dst = %d/%d", r.Source(), r.Dest())
	}
	if !r.Valid(g) {
		t.Error("route should be valid")
	}
	if got := r.Length(g); math.Abs(got-300) > 1e-9 {
		t.Errorf("Length = %v", got)
	}
	bad := NewRoute(0, 2)
	if bad.Valid(g) {
		t.Error("0→2 should be invalid")
	}
	if (Route{}).Valid(g) {
		t.Error("empty route should be invalid")
	}
	edges, err := r.Edges(g)
	if err != nil || len(edges) != 3 {
		t.Errorf("Edges = %v, %v", edges, err)
	}
	if _, err := bad.Edges(g); err == nil {
		t.Error("Edges on broken route should error")
	}
	if _, err := (Route{}).Edges(g); err == nil {
		t.Error("Edges on empty route should error")
	}
}

func TestRouteEqualClone(t *testing.T) {
	a := NewRoute(1, 2, 3)
	b := a.Clone()
	if !a.Equal(b) {
		t.Error("clone should be equal")
	}
	b.Nodes[0] = 9
	if a.Equal(b) {
		t.Error("mutated clone should differ")
	}
	if a.Nodes[0] != 1 {
		t.Error("clone should not share storage")
	}
	if a.Equal(NewRoute(1, 2)) {
		t.Error("length mismatch should differ")
	}
}

func TestRouteSimilarity(t *testing.T) {
	a := NewRoute(0, 1, 2, 3)
	if got := a.Similarity(a); got != 1 {
		t.Errorf("self similarity = %v", got)
	}
	b := NewRoute(3, 2, 1, 0) // reversed: same undirected edges
	if got := a.Similarity(b); got != 1 {
		t.Errorf("reversed similarity = %v", got)
	}
	c := NewRoute(0, 1, 5, 3) // shares edge 0-1 only; a has 3 edges, c has 3
	got := a.Similarity(c)
	want := 1.0 / 5.0
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("partial similarity = %v, want %v", got, want)
	}
	d := NewRoute(7, 8)
	if got := a.Similarity(d); got != 0 {
		t.Errorf("disjoint similarity = %v", got)
	}
	if got := (Route{}).Similarity(Route{}); got != 1 {
		t.Errorf("empty similarity = %v", got)
	}
}

func TestRouteLights(t *testing.T) {
	g := NewGraph(3, 4)
	g.AddNode(geo.Point{})
	g.AddNode(geo.Point{X: 100})
	g.AddNode(geo.Point{X: 200})
	g.AddEdge(0, 1, Local, 0, 1, 0)
	g.AddEdge(1, 2, Local, 0, 1, 0)
	r := NewRoute(0, 1, 2)
	if got := r.Lights(g); got != 2 {
		t.Errorf("Lights = %d", got)
	}
}

func TestRoutePolylineString(t *testing.T) {
	g := line(3)
	r := NewRoute(0, 1, 2)
	pl := r.Polyline(g)
	if len(pl) != 3 || pl[2] != (geo.Point{X: 200, Y: 0}) {
		t.Errorf("Polyline = %v", pl)
	}
	if s := r.String(); s != "[0→1→2]" {
		t.Errorf("String = %q", s)
	}
}

func TestGenerateConnectivityAndDeterminism(t *testing.T) {
	cfg := DefaultGenConfig()
	cfg.Cols, cfg.Rows = 10, 10
	g1 := Generate(cfg)
	g2 := Generate(cfg)
	if g1.NumNodes() != g2.NumNodes() || g1.NumEdges() != g2.NumEdges() {
		t.Fatal("generation is not deterministic")
	}
	if g1.NumNodes() < 100 {
		t.Fatalf("nodes = %d, want >= 100", g1.NumNodes())
	}
	// BFS from node 0 must reach every node (generator keeps connectivity).
	visited := make([]bool, g1.NumNodes())
	queue := []NodeID{0}
	visited[0] = true
	count := 1
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, eid := range g1.Out(n) {
			to := g1.Edge(eid).To
			if !visited[to] {
				visited[to] = true
				count++
				queue = append(queue, to)
			}
		}
	}
	if count != g1.NumNodes() {
		t.Errorf("connected component = %d of %d nodes", count, g1.NumNodes())
	}
}

func TestGenerateClasses(t *testing.T) {
	g := Generate(DefaultGenConfig())
	have := map[RoadClass]int{}
	for i := 0; i < g.NumEdges(); i++ {
		have[g.Edge(EdgeID(i)).Class]++
	}
	for _, c := range []RoadClass{Local, Arterial, Highway, Collector} {
		if have[c] == 0 {
			t.Errorf("no %v edges generated", c)
		}
	}
}

func TestGeneratePanicsOnTinyGrid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Generate should panic on 1x1 grid")
		}
	}()
	Generate(GenConfig{Cols: 1, Rows: 1, Spacing: 100})
}

func TestSerializeRoundTrip(t *testing.T) {
	g := Generate(GenConfig{
		Cols: 5, Rows: 5, Spacing: 200, Jitter: 10,
		ArterialEach: 2, HighwayRing: true, RemoveProb: 0.1,
		LightProb: 0.4, ArtLightProb: 0.6, Seed: 3,
	})
	var buf bytes.Buffer
	if err := g.Write(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip size mismatch: %d/%d vs %d/%d",
			g2.NumNodes(), g2.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	for i := 0; i < g.NumEdges(); i++ {
		e1, e2 := g.Edge(EdgeID(i)), g2.Edge(EdgeID(i))
		if e1.From != e2.From || e1.To != e2.To || e1.Class != e2.Class ||
			e1.Lights != e2.Lights || math.Abs(e1.Length-e2.Length) > 1e-9 {
			t.Fatalf("edge %d mismatch: %+v vs %+v", i, e1, e2)
		}
	}
}

func TestReadFromRejectsBadData(t *testing.T) {
	if _, err := ReadFrom(bytes.NewBufferString("not json")); err == nil {
		t.Error("garbage should fail")
	}
	bad := `{"nodes":[{"x":0,"y":0}],"edges":[{"from":0,"to":5}]}`
	if _, err := ReadFrom(bytes.NewBufferString(bad)); err == nil {
		t.Error("dangling edge should fail")
	}
}

func TestBBoxPanicsOnEmptyGraph(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("BBox on empty graph should panic")
		}
	}()
	NewGraph(0, 0).BBox()
}
