package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"
	"time"
)

type ctxKey int

const requestIDKey ctxKey = iota

// RequestIDFrom returns the request ID the middleware attached to the
// context, or "" outside a server request.
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

var requestSeq atomic.Uint64

// newRequestID returns a short unique ID: a random hex nonce, falling back
// to a process-local sequence if the entropy source fails.
func newRequestID() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("req-%d", requestSeq.Add(1))
	}
	return hex.EncodeToString(b[:])
}

// statusRecorder captures the status code written by a handler. The zero
// status means "nothing written yet", which the recovery middleware uses to
// decide whether a 500 can still be sent.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(code int) {
	if sr.status == 0 {
		sr.status = code
	}
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(b []byte) (int, error) {
	if sr.status == 0 {
		sr.status = http.StatusOK
	}
	return sr.ResponseWriter.Write(b)
}

// Flush keeps streaming responses working through the recorder.
func (sr *statusRecorder) Flush() {
	if f, ok := sr.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// withRequestID assigns every request an ID (honoring a client-supplied
// X-Request-ID), stores it in the context, and echoes it in the response.
func withRequestID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-ID")
		if id == "" || len(id) > 128 {
			id = newRequestID()
		}
		w.Header().Set("X-Request-ID", id)
		next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), requestIDKey, id)))
	})
}

// withAccessLog logs one line per request: method, path, status, duration,
// request ID. A nil logger disables logging (the default in tests).
func (s *Server) withAccessLog(next http.Handler) http.Handler {
	if s.logger == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(rec, r)
		status := rec.status
		if status == 0 {
			status = http.StatusOK
		}
		s.logger.Printf("%s %s %d %s rid=%s", r.Method, r.URL.Path, status,
			time.Since(start).Round(time.Microsecond), RequestIDFrom(r.Context()))
	})
}

// withRecovery converts a handler panic into a 500 (in the surface's error
// shape) instead of killing the connection, and logs the panic with the
// request ID so it can be found.
func (s *Server) withRecovery(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w}
		defer func() {
			v := recover()
			if v == nil {
				return
			}
			//cplint:ignore sentinel -- net/http contract: ErrAbortHandler is a panic value detected by identity, never wrapped
			if v == http.ErrAbortHandler { // deliberate connection abort
				panic(v)
			}
			if s.logger != nil {
				s.logger.Printf("panic serving %s %s rid=%s: %v", r.Method, r.URL.Path, RequestIDFrom(r.Context()), v)
			}
			if rec.status == 0 { // headers not sent yet: a clean 500 is still possible
				v1 := strings.HasPrefix(r.URL.Path, "/v1/")
				writeErr(rec, r, v1, http.StatusInternalServerError, CodeInternal, "internal server error")
			}
		}()
		next.ServeHTTP(rec, r)
	})
}

// instrument wraps a handler to record per-pattern metrics, which
// GET /v1/health surfaces. A panicking handler is recorded as a 500 (that
// is what the recovery middleware will send) before the panic continues.
func (s *Server) instrument(pattern string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w}
		start := time.Now()
		defer func() {
			if v := recover(); v != nil {
				s.metrics.observe(pattern, http.StatusInternalServerError, time.Since(start))
				panic(v)
			}
			status := rec.status
			if status == 0 {
				status = http.StatusOK
			}
			s.metrics.observe(pattern, status, time.Since(start))
		}()
		h(rec, r)
	})
}
