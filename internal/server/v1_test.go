package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"crowdplanner/internal/core"
	"crowdplanner/internal/landmark"
)

// envelope mirrors the /v1 error envelope for decoding in tests.
type envelope struct {
	Error struct {
		Code      string `json:"code"`
		Message   string `json:"message"`
		RequestID string `json:"request_id"`
	} `json:"error"`
}

func decodeEnvelope(t *testing.T, resp *http.Response, wantStatus int, wantCode string) envelope {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("status = %d, want %d", resp.StatusCode, wantStatus)
	}
	var env envelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("decoding envelope: %v", err)
	}
	if env.Error.Code != wantCode {
		t.Errorf("code = %q, want %q", env.Error.Code, wantCode)
	}
	if env.Error.Message == "" {
		t.Error("empty error message")
	}
	if env.Error.RequestID == "" {
		t.Error("empty request_id in envelope")
	}
	return env
}

func TestV1ErrorEnvelopes(t *testing.T) {
	s, _ := testServer(t)

	// 400 invalid_json: unparseable body.
	resp, err := http.Post(s.URL+"/v1/recommend", "application/json", bytes.NewBufferString("{"))
	if err != nil {
		t.Fatal(err)
	}
	env := decodeEnvelope(t, resp, http.StatusBadRequest, "invalid_json")
	if rid := resp.Header.Get("X-Request-ID"); rid == "" || rid != env.Error.RequestID {
		t.Errorf("header rid %q != envelope rid %q", rid, env.Error.RequestID)
	}

	// 400 bad_request: semantic validation, classified via errors.Is on the
	// core sentinel (not string matching).
	resp = postJSON(t, s.URL+"/v1/recommend", RecommendRequest{From: 3, To: 3})
	decodeEnvelope(t, resp, http.StatusBadRequest, "bad_request")

	// 400 bad_request: malformed pagination.
	decodeEnvelope(t, mustGet(t, s.URL+"/v1/landmarks?limit=zero"), http.StatusBadRequest, "bad_request")
	decodeEnvelope(t, mustGet(t, s.URL+"/v1/truths?offset=-1"), http.StatusBadRequest, "bad_request")

	// 404 not_found: unknown task.
	decodeEnvelope(t, mustGet(t, s.URL+"/v1/tasks/99999"), http.StatusNotFound, "not_found")
}

func TestV1AsyncErrorCodes(t *testing.T) {
	srv, w, _ := asyncServer(t)
	trip := w.Data.Trips[4]
	resp := postJSON(t, srv.URL+"/v1/recommend/async", RecommendRequest{
		From: trip.Route.Source(), To: trip.Route.Dest(), DepartMin: float64(trip.Depart),
	})
	out := decode[AsyncRecommendResponse](t, resp)
	if out.Ticket == nil {
		t.Skipf("TR resolved directly (stage %v)", out.Resolved.Stage)
	}
	id := out.Ticket.TaskID

	// 403 not_assigned: an unassigned worker tries to answer.
	r := postJSON(t, fmt.Sprintf("%s/v1/tasks/%d/answer", srv.URL, id), AnswerRequest{Worker: 30000, Yes: true})
	decodeEnvelope(t, r, http.StatusForbidden, "not_assigned")

	// Expire closes the task...
	r = postJSON(t, fmt.Sprintf("%s/v1/tasks/%d/expire", srv.URL, id), nil)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("expire status = %d", r.StatusCode)
	}
	r.Body.Close()

	// ...so a second expire and a late answer are 409 task_closed.
	r = postJSON(t, fmt.Sprintf("%s/v1/tasks/%d/expire", srv.URL, id), nil)
	decodeEnvelope(t, r, http.StatusConflict, "task_closed")
	r = postJSON(t, fmt.Sprintf("%s/v1/tasks/%d/answer", srv.URL, id),
		AnswerRequest{Worker: out.Ticket.AssignedWorkers[0], Yes: true})
	decodeEnvelope(t, r, http.StatusConflict, "task_closed")
}

func TestV1BatchMixedItems(t *testing.T) {
	s, w := testServer(t)

	// 50 items through the concurrent core: mostly valid ODs with a few
	// malformed ones sprinkled in; per-item errors must not void the rest.
	const n = 50
	invalid := map[int]bool{7: true, 23: true, 41: true}
	items := make([]RecommendRequest, n)
	for i := range items {
		trip := w.Data.Trips[i%len(w.Data.Trips)]
		items[i] = RecommendRequest{
			From: trip.Route.Source(), To: trip.Route.Dest(),
			DepartMin: float64(trip.Depart) + float64(i%3),
		}
		if invalid[i] {
			items[i] = RecommendRequest{From: 3, To: 3} // rejected by the core
		}
	}
	resp := postJSON(t, s.URL+"/v1/recommend/batch", BatchRecommendRequest{Items: items})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d", resp.StatusCode)
	}
	out := decode[BatchRecommendResponse](t, resp)
	if len(out.Results) != n {
		t.Fatalf("results = %d, want %d", len(out.Results), n)
	}
	if out.Succeeded+out.Failed != n || out.Failed < len(invalid) {
		t.Errorf("succeeded=%d failed=%d", out.Succeeded, out.Failed)
	}
	for i, res := range out.Results {
		if res.Index != i {
			t.Fatalf("result %d has index %d", i, res.Index)
		}
		if invalid[i] {
			if res.Error == nil || res.Error.Code != CodeBadRequest || res.Status != http.StatusBadRequest {
				t.Errorf("item %d: expected bad_request, got %+v", i, res)
			}
			continue
		}
		if res.Error != nil {
			t.Errorf("item %d failed: %+v", i, res.Error)
			continue
		}
		if res.Status != http.StatusOK || len(res.Result.Route) < 2 {
			t.Errorf("item %d: bad result %+v", i, res)
		}
	}
}

func TestV1BatchValidation(t *testing.T) {
	s, w := testServer(t)
	// Empty batch.
	resp := postJSON(t, s.URL+"/v1/recommend/batch", BatchRecommendRequest{})
	decodeEnvelope(t, resp, http.StatusBadRequest, "bad_request")

	// Over the configured item limit.
	small := httptest.NewServer(New(w.System, WithBatchLimits(2, 1)).Handler())
	defer small.Close()
	trip := w.Data.Trips[0]
	item := RecommendRequest{From: trip.Route.Source(), To: trip.Route.Dest(), DepartMin: float64(trip.Depart)}
	resp = postJSON(t, small.URL+"/v1/recommend/batch",
		BatchRecommendRequest{Items: []RecommendRequest{item, item, item}})
	decodeEnvelope(t, resp, http.StatusRequestEntityTooLarge, "too_large")
}

func TestV1Pagination(t *testing.T) {
	s, w := testServer(t)
	// Seed at least one truth.
	trip := w.Data.Trips[2]
	postJSON(t, s.URL+"/v1/recommend", RecommendRequest{
		From: trip.Route.Source(), To: trip.Route.Dest(), DepartMin: float64(trip.Depart),
	}).Body.Close()

	truths := decode[Page[TruthInfo]](t, mustGet(t, s.URL+"/v1/truths?limit=1"))
	if truths.Total < 1 || len(truths.Items) != 1 || truths.Limit != 1 || truths.Offset != 0 {
		t.Errorf("truths page = %+v", truths)
	}

	// Offset past the end: items must be [] (present, empty), not null.
	resp := mustGet(t, fmt.Sprintf("%s/v1/truths?offset=%d", s.URL, truths.Total+100))
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(raw), `"items":[]`) {
		t.Errorf("past-the-end page items not []: %s", raw)
	}

	lms := decode[Page[LandmarkInfo]](t, mustGet(t, s.URL+"/v1/landmarks?limit=5&offset=2"))
	if len(lms.Items) != 5 || lms.Total != w.Landmarks.Len() || lms.Offset != 2 {
		t.Errorf("landmarks page = %+v", lms)
	}
	for i := 1; i < len(lms.Items); i++ {
		if lms.Items[i].Significance > lms.Items[i-1].Significance {
			t.Error("landmarks not sorted by significance")
		}
	}
	// Pages tile without gap or overlap: offset=2 starts at the third item.
	first := decode[Page[LandmarkInfo]](t, mustGet(t, s.URL+"/v1/landmarks?limit=3"))
	if first.Items[2].ID != lms.Items[0].ID {
		t.Errorf("offset=2 page should start at the limit=3 page's third item")
	}
}

func TestLegacyAliasShapes(t *testing.T) {
	_, w := testServer(t)
	// A fresh system: empty truth DB and untouched source stats.
	fresh := core.New(w.System.Config(), w.Graph, w.Landmarks, w.Data, w.Pool,
		&core.PopulationOracle{Data: w.Data, Sample: 30})
	srv := httptest.NewServer(New(fresh).Handler())
	defer srv.Close()

	// Deprecated aliases answer with a Deprecation header and a pointer to
	// the /v1 successor.
	resp := mustGet(t, srv.URL+"/api/truths")
	if resp.Header.Get("Deprecation") != "true" || !strings.Contains(resp.Header.Get("Link"), "/v1/truths") {
		t.Errorf("missing deprecation headers: %v", resp.Header)
	}
	// Legacy payload shape: a bare array — and [] (not null) when empty.
	for _, path := range []string{"/api/truths", "/api/sources"} {
		r := mustGet(t, srv.URL+path)
		raw, _ := io.ReadAll(r.Body)
		r.Body.Close()
		if got := strings.TrimSpace(string(raw)); got != "[]" {
			t.Errorf("%s empty body = %q, want []", path, got)
		}
	}
	resp.Body.Close()

	// Legacy error shape: {"error": "<message>"} with the same statuses.
	r := postJSON(t, srv.URL+"/api/recommend", RecommendRequest{From: 3, To: 3})
	defer r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Fatalf("legacy bad request status = %d", r.StatusCode)
	}
	var legacy map[string]string
	if err := json.NewDecoder(r.Body).Decode(&legacy); err != nil {
		t.Fatal(err)
	}
	if legacy["error"] == "" {
		t.Errorf("legacy error shape = %v", legacy)
	}

	// Legacy health keeps the pre-versioning shape: no serving metrics.
	hr := mustGet(t, srv.URL+"/api/health")
	raw, _ := io.ReadAll(hr.Body)
	hr.Body.Close()
	if strings.Contains(string(raw), `"endpoints"`) {
		t.Error("legacy /api/health grew v1-only fields")
	}
}

func TestLegacyLandmarksEmptyIsArray(t *testing.T) {
	_, w := testServer(t)
	cfg := w.System.Config()
	cfg.UsePMF = false // no familiarity model to fit over zero landmarks
	empty := core.New(cfg, w.Graph, landmark.NewSet(nil), w.Data, w.Pool,
		&core.PopulationOracle{Data: w.Data, Sample: 30})
	srv := httptest.NewServer(New(empty).Handler())
	defer srv.Close()

	r := mustGet(t, srv.URL+"/api/landmarks")
	raw, _ := io.ReadAll(r.Body)
	r.Body.Close()
	if got := strings.TrimSpace(string(raw)); got != "[]" {
		t.Errorf("/api/landmarks empty body = %q, want []", got)
	}
}

func TestV1HealthMetricsAndRequestID(t *testing.T) {
	_, w := testServer(t)
	srv := httptest.NewServer(New(w.System).Handler())
	defer srv.Close()

	// A client-supplied request ID is honored and echoed.
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/v1/health", nil)
	req.Header.Set("X-Request-ID", "test-rid-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if rid := resp.Header.Get("X-Request-ID"); rid != "test-rid-1" {
		t.Errorf("echoed rid = %q", rid)
	}

	// Run one recommendation through the serving path first, so the routing
	// section below reflects a prep-tier (ALT) search regardless of which
	// tests ran before this one.
	trip := w.Data.Trips[0]
	postJSON(t, srv.URL+"/v1/recommend", RecommendRequest{
		From: trip.Route.Source(), To: trip.Route.Dest(), DepartMin: float64(trip.Depart),
	}).Body.Close()

	h := decode[HealthV1Response](t, mustGet(t, srv.URL+"/v1/health"))
	if h.Status != "ok" || h.OpenTasks != 0 || h.UptimeSec <= 0 {
		t.Errorf("health = %+v", h)
	}
	em, ok := h.Endpoints["GET /v1/health"]
	if !ok || em.Count < 1 {
		t.Errorf("no metrics for GET /v1/health: %+v", h.Endpoints)
	}
	if em.AvgMs < 0 || em.MaxMs < em.AvgMs {
		t.Errorf("latency aggregates inconsistent: %+v", em)
	}
	// The routing section mirrors the route-cache stats: building the test
	// world already ran searches (driver simulation, truth polling), so the
	// engine counters must be non-zero and consistent.
	if h.Routing.Searches == 0 || h.Routing.HeapPushes == 0 {
		t.Errorf("routing counters empty: %+v", h.Routing)
	}
	if h.Routing.AStarSearches > h.Routing.Searches {
		t.Errorf("more A* searches than searches: %+v", h.Routing)
	}
	// The preprocessing tier is on by default, so building the test world
	// ran one landmark build per cost model, and the serving path's
	// goal-directed searches went through the ALT bound.
	if h.Routing.PrepBuilds < 2 || h.Routing.PrepLandmarks < h.Routing.PrepBuilds {
		t.Errorf("prep counters empty: %+v", h.Routing)
	}
	if h.Routing.PrepTableBytes == 0 || h.Routing.PrepBuildNs == 0 {
		t.Errorf("prep cost counters empty: %+v", h.Routing)
	}
	if h.Routing.ALTSearches == 0 || h.Routing.ALTActiveLandmarks < h.Routing.ALTSearches {
		t.Errorf("ALT counters inconsistent: %+v", h.Routing)
	}
	if h.Routing.ALTSearches > h.Routing.Searches {
		t.Errorf("more ALT searches than searches: %+v", h.Routing)
	}
}

func TestV1UnmatchedRoutesUseEnvelope(t *testing.T) {
	s, _ := testServer(t)
	// Unknown path: envelope 404, not ServeMux's plain-text page.
	decodeEnvelope(t, mustGet(t, s.URL+"/v1/nope"), http.StatusNotFound, "not_found")

	// Wrong method on a known path: envelope 405 with Allow.
	resp := mustGet(t, s.URL+"/v1/recommend")
	if allow := resp.Header.Get("Allow"); !strings.Contains(allow, "POST") {
		t.Errorf("Allow = %q, want POST", allow)
	}
	decodeEnvelope(t, resp, http.StatusMethodNotAllowed, "method_not_allowed")
}
