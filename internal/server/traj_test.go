package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"crowdplanner/internal/core"
)

// ingestServer builds a private world: ingestion mutates the corpus, so the
// shared read-mostly test server must not be used.
func ingestServer(t *testing.T) (*httptest.Server, *core.Scenario) {
	t.Helper()
	scn := core.BuildScenario(core.SmallScenarioConfig())
	srv := httptest.NewServer(New(scn.System, WithTrajBatchLimit(8)).Handler())
	t.Cleanup(srv.Close)
	return srv, scn
}

func TestIngestTrajectories(t *testing.T) {
	s, w := ingestServer(t)
	var trip core.Request
	var nodes []int64
	for _, tr := range w.Data.Trips {
		if tr.Route.Empty() {
			continue
		}
		trip = core.Request{From: tr.Route.Source(), To: tr.Route.Dest(), Depart: tr.Depart}
		for _, n := range tr.Route.Nodes {
			nodes = append(nodes, int64(n))
		}
		break
	}
	if nodes == nil {
		t.Fatal("no usable trip in corpus")
	}
	before := w.System.CorpusSize()

	body := map[string]any{"trips": []map[string]any{
		{"driver": 3, "depart_min": float64(trip.Depart) + 30, "nodes": nodes},
		{"driver": 4, "depart_min": 510, "nodes": []int64{0}},        // too short
		{"driver": 5, "depart_min": 510, "nodes": []int64{0, 99999}}, // out of range
		// Would alias onto valid nodes if narrowed to int32; must be
		// rejected, not wrapped.
		{"driver": 6, "depart_min": 510, "nodes": []int64{1 << 32, 1<<32 + 1}},
	}}
	resp := postJSON(t, s.URL+"/v1/trajectories", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	out := decode[IngestResponse](t, resp)
	if out.Accepted != 1 || len(out.Rejected) != 3 {
		t.Fatalf("reply = %+v, want 1 accepted / 3 rejected", out)
	}
	if out.Rejected[0].Index != 1 || out.Rejected[1].Index != 2 || out.Rejected[2].Index != 3 {
		t.Fatalf("rejection indices = %+v", out.Rejected)
	}
	if !strings.Contains(out.Rejected[2].Reason, "representable") {
		t.Fatalf("int64 overflow reason = %q", out.Rejected[2].Reason)
	}
	if out.TotalTrips != before+1 {
		t.Fatalf("total_trips = %d, want %d", out.TotalTrips, before+1)
	}

	// The ingested trip shows up in the health inventory.
	hres, err := http.Get(s.URL + "/v1/health")
	if err != nil {
		t.Fatal(err)
	}
	health := decode[HealthV1Response](t, hres)
	if health.Trips != before+1 {
		t.Fatalf("health trips = %d, want %d", health.Trips, before+1)
	}
	if health.Store.TrajAppends != 1 {
		t.Fatalf("store traj_appends = %d, want 1", health.Store.TrajAppends)
	}
}

func TestIngestTrajectoriesValidation(t *testing.T) {
	s, _ := ingestServer(t)

	// Empty batch.
	resp := postJSON(t, s.URL+"/v1/trajectories", map[string]any{"trips": []any{}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch status = %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Over the configured limit (8 for this server).
	big := make([]map[string]any, 9)
	for i := range big {
		big[i] = map[string]any{"driver": 1, "depart_min": 500, "nodes": []int64{0, 1}}
	}
	resp = postJSON(t, s.URL+"/v1/trajectories", map[string]any{"trips": big})
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized batch status = %d", resp.StatusCode)
	}
	env := decode[errorEnvelope](t, resp)
	if env.Error.Code != CodeTooLarge {
		t.Fatalf("oversized batch code = %q", env.Error.Code)
	}

	// Malformed JSON.
	req, _ := http.NewRequest(http.MethodPost, s.URL+"/v1/trajectories", nil)
	hres, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if hres.StatusCode != http.StatusBadRequest {
		t.Fatalf("nil body status = %d", hres.StatusCode)
	}
	hres.Body.Close()
}
