package server

import (
	"context"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Overload protection (DESIGN.md §14): a bounded admission queue that sheds
// excess load with 429s instead of letting goroutines and latency pile up,
// a per-client token-bucket rate limiter, and a per-request deadline budget
// threaded through the existing context plumbing. All three are opt-in via
// WithOverload — embedded test servers and trusted single-tenant
// deployments keep today's unbounded behaviour by default — and health
// endpoints are always exempt, so operators can observe an overloaded
// server.

// OverloadConfig configures the admission layer. Each mechanism disables
// independently when its knob is zero.
type OverloadConfig struct {
	// MaxConcurrent caps requests in service at once. <= 0 disables
	// admission control (and the queue).
	MaxConcurrent int
	// MaxQueue bounds how many admitted-but-waiting requests may queue for
	// a service slot; arrivals beyond it are shed with 429 + Retry-After.
	// Only meaningful with MaxConcurrent > 0. <= 0 means no waiting room:
	// every request beyond MaxConcurrent sheds immediately.
	MaxQueue int
	// RatePerSec is the per-client token refill rate, keyed by X-API-Key
	// (or the remote address when absent). <= 0 disables rate limiting.
	RatePerSec float64
	// Burst is the token-bucket capacity. <= 0 defaults to 2×RatePerSec
	// (and at least 1).
	Burst float64
	// RequestTimeout is the per-request deadline budget: each admitted
	// request's context is bounded by it, and the serving core aborts its
	// pipeline when it expires (the client sees 504 deadline_exceeded).
	// <= 0 disables.
	RequestTimeout time.Duration
	// RetryAfter is the hint sent with shed-load 429s and degraded-mode
	// 503s. <= 0 defaults to 1s.
	RetryAfter time.Duration
}

// WithOverload enables overload protection with the given config.
func WithOverload(cfg OverloadConfig) Option {
	return func(s *Server) { s.overload = newOverloadGuard(cfg) }
}

// OverloadInfo reports the admission layer's counters on GET /v1/health.
type OverloadInfo struct {
	Enabled bool `json:"enabled"`
	// Shed counts requests rejected by the bounded admission queue.
	Shed uint64 `json:"shed"`
	// RateLimited counts requests rejected by the per-client token bucket.
	RateLimited uint64 `json:"rate_limited"`
	// Coalesced counts requests whose candidate generation piggybacked on
	// another in-flight request for the same OD+slot (core singleflight).
	Coalesced uint64 `json:"coalesced"`
	// InFlight and Queued are instantaneous gauges.
	InFlight int `json:"in_flight"`
	Queued   int `json:"queued"`
	// The configured bounds, for dashboard context.
	MaxConcurrent     int     `json:"max_concurrent"`
	MaxQueue          int     `json:"max_queue"`
	RatePerSec        float64 `json:"rate_per_sec"`
	RequestTimeoutSec float64 `json:"request_timeout_sec"`
}

// overloadGuard is the middleware state behind WithOverload.
type overloadGuard struct {
	cfg  OverloadConfig
	sem  chan struct{} // service slots; nil when admission control is off
	shed atomic.Uint64
	// queued counts requests waiting for a slot; admission sheds when it
	// would exceed MaxQueue.
	queued  atomic.Int64
	limited atomic.Uint64

	lmu sync.Mutex
	//cplint:guardedby lmu
	buckets map[string]*bucket
}

// bucket is one client's token bucket. Guarded by overloadGuard.lmu.
type bucket struct {
	tokens float64
	last   time.Time
}

func newOverloadGuard(cfg OverloadConfig) *overloadGuard {
	if cfg.Burst <= 0 {
		cfg.Burst = max(2*cfg.RatePerSec, 1)
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	g := &overloadGuard{cfg: cfg, buckets: make(map[string]*bucket)}
	if cfg.MaxConcurrent > 0 {
		g.sem = make(chan struct{}, cfg.MaxConcurrent)
	}
	return g
}

// maxBuckets bounds the rate-limiter map; beyond it, buckets idle long
// enough to have fully refilled are evicted (dropping one forgets at most a
// full burst of credit, never debt).
const maxBuckets = 4096

// allow runs one request through the client's token bucket. When the bucket
// is dry it reports the wait until the next token as a Retry-After hint.
func (g *overloadGuard) allow(key string, now time.Time) (ok bool, retryAfter time.Duration) {
	g.lmu.Lock()
	defer g.lmu.Unlock()
	b := g.buckets[key]
	if b == nil {
		if len(g.buckets) >= maxBuckets {
			g.sweepLocked(now)
		}
		b = &bucket{tokens: g.cfg.Burst, last: now}
		g.buckets[key] = b
	}
	elapsed := now.Sub(b.last).Seconds()
	if elapsed > 0 {
		b.tokens = min(g.cfg.Burst, b.tokens+elapsed*g.cfg.RatePerSec)
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / g.cfg.RatePerSec * float64(time.Second))
	return false, wait
}

// sweepLocked drops buckets idle long enough to be fully refilled.
func (g *overloadGuard) sweepLocked(now time.Time) {
	full := time.Duration(g.cfg.Burst / g.cfg.RatePerSec * float64(time.Second))
	//cplint:ordered-irrelevant -- eviction of independent per-client buckets; no observable order
	for k, b := range g.buckets {
		if now.Sub(b.last) >= full {
			delete(g.buckets, k)
		}
	}
}

// clientKey identifies the caller for rate limiting: the API key when
// presented, else the remote host (ignoring the ephemeral port, so one
// client's connections share a bucket).
func clientKey(r *http.Request) string {
	if k := r.Header.Get("X-API-Key"); k != "" {
		return "key:" + k
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		host = r.RemoteAddr
	}
	return "addr:" + host
}

// exemptFromOverload lists the paths that must stay reachable while the
// server is saturated: health (operators observing the overload) — on both
// surfaces, so legacy dashboards keep working too.
func exemptFromOverload(path string) bool {
	return path == "/v1/health" || path == "/api/health"
}

// setRetryAfter writes the Retry-After header, rounding up to whole seconds
// (the header's granularity; 0 would mean "retry immediately").
func setRetryAfter(w http.ResponseWriter, d time.Duration) {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
}

// withOverload is the admission middleware: rate limit, then bounded queue,
// then deadline budget. It runs before mux dispatch, so a shed request
// costs no routing or handler work; sheds are counted in OverloadInfo
// rather than the per-endpoint metrics.
func (s *Server) withOverload(next http.Handler) http.Handler {
	g := s.overload
	if g == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if exemptFromOverload(r.URL.Path) {
			next.ServeHTTP(w, r)
			return
		}
		v1 := strings.HasPrefix(r.URL.Path, "/v1/")
		if g.cfg.RatePerSec > 0 {
			if ok, wait := g.allow(clientKey(r), time.Now()); !ok {
				g.limited.Add(1)
				setRetryAfter(w, wait)
				writeErr(w, r, v1, http.StatusTooManyRequests, CodeRateLimited,
					"client rate limit exceeded (%.3g req/s)", g.cfg.RatePerSec)
				return
			}
		}
		if g.sem != nil {
			select {
			case g.sem <- struct{}{}:
			default:
				// No free slot: wait in the bounded queue or shed.
				if q := g.queued.Add(1); int(q) > g.cfg.MaxQueue {
					g.queued.Add(-1)
					g.shed.Add(1)
					setRetryAfter(w, g.cfg.RetryAfter)
					writeErr(w, r, v1, http.StatusTooManyRequests, CodeOverloaded,
						"server at capacity (%d in service, %d queued); load shed", g.cfg.MaxConcurrent, g.cfg.MaxQueue)
					return
				}
				select {
				case g.sem <- struct{}{}:
					g.queued.Add(-1)
				case <-r.Context().Done():
					g.queued.Add(-1)
					writeErr(w, r, v1, statusClientClosedRequest, CodeCancelled,
						"client went away while queued for admission")
					return
				}
			}
			defer func() { <-g.sem }()
		}
		if g.cfg.RequestTimeout > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), g.cfg.RequestTimeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		next.ServeHTTP(w, r)
	})
}

// overloadInfo snapshots the admission counters for GET /v1/health.
func (s *Server) overloadInfo() OverloadInfo {
	info := OverloadInfo{Coalesced: s.sys.CoalescedRequests()}
	g := s.overload
	if g == nil {
		return info
	}
	info.Enabled = true
	info.Shed = g.shed.Load()
	info.RateLimited = g.limited.Load()
	info.Queued = int(g.queued.Load())
	if g.sem != nil {
		info.InFlight = len(g.sem)
	}
	info.MaxConcurrent = g.cfg.MaxConcurrent
	info.MaxQueue = g.cfg.MaxQueue
	info.RatePerSec = g.cfg.RatePerSec
	info.RequestTimeoutSec = g.cfg.RequestTimeout.Seconds()
	return info
}

// rejectIfDegraded guards a mutating endpoint: while the storage circuit
// breaker is open the system is read-only — accepting a mutation whose
// commit record would be short-circuited could silently lose it across a
// restart. Recommends (and batch) stay served: their truth write-backs are
// best-effort observations, and their append attempts are the probe traffic
// that heals the breaker.
func (s *Server) rejectIfDegraded(w http.ResponseWriter, r *http.Request, v1 bool) bool {
	if !s.sys.Degraded() {
		return false
	}
	retry := time.Second
	if s.overload != nil {
		retry = s.overload.cfg.RetryAfter
	}
	setRetryAfter(w, retry)
	writeErr(w, r, v1, http.StatusServiceUnavailable, CodeDegraded,
		"storage backend degraded (circuit breaker open): mutating endpoints are read-only until it heals")
	return true
}
