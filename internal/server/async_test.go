package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"crowdplanner/internal/calibrate"
	"crowdplanner/internal/core"
	"crowdplanner/internal/landmark"
)

// asyncServer builds a crowd-forced system so async requests always publish
// tickets, on its own httptest server.
func asyncServer(t *testing.T) (*httptest.Server, *core.Scenario, *core.System) {
	t.Helper()
	_, w := testServer(t) // reuse the shared scenario world
	cfg := w.System.Config()
	cfg.AgreementSim = 1.01
	cfg.EtaConfidence = 1.01
	cfg.ReuseTruth = false
	sys := core.New(cfg, w.Graph, w.Landmarks, w.Data, w.Pool,
		&core.PopulationOracle{Data: w.Data, Sample: 30})
	srv := httptest.NewServer(New(sys).Handler())
	t.Cleanup(srv.Close)
	return srv, w, sys
}

func TestAsyncHTTPLifecycle(t *testing.T) {
	srv, w, sys := asyncServer(t)
	trip := w.Data.Trips[0]

	// 1. Publish.
	reqBody, _ := json.Marshal(RecommendRequest{
		From: trip.Route.Source(), To: trip.Route.Dest(), DepartMin: float64(trip.Depart),
	})
	resp := postJSON(t, srv.URL+"/api/recommend/async", json.RawMessage(reqBody))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("publish status = %d", resp.StatusCode)
	}
	out := decode[AsyncRecommendResponse](t, resp)
	if out.Ticket == nil {
		t.Skipf("TR resolved directly (stage %v)", out.Resolved.Stage)
	}
	ticket := out.Ticket
	if ticket.State != "open" || ticket.CurrentQuestion == nil || len(ticket.AssignedWorkers) == 0 {
		t.Fatalf("bad ticket %+v", ticket)
	}

	// 2. The assigned workers see the question.
	wt := decode[[]WorkerTaskInfo](t, mustGet(t,
		fmt.Sprintf("%s/api/workers/%d/tasks", srv.URL, ticket.AssignedWorkers[0])))
	found := false
	for _, info := range wt {
		if info.TaskID == ticket.TaskID {
			found = true
			if info.Landmark != *ticket.CurrentQuestion {
				t.Errorf("worker sees landmark %d, ticket says %d", info.Landmark, *ticket.CurrentQuestion)
			}
		}
	}
	if !found {
		t.Error("assigned worker does not see the open task")
	}

	// 3. Everyone answers truthfully until resolution.
	oracleRoute, err := (&core.PopulationOracle{Data: w.Data, Sample: 30}).
		BestRoute(trip.Route.Source(), trip.Route.Dest(), trip.Depart)
	if err != nil {
		t.Fatal(err)
	}
	lr := calibrate.Calibrate(w.Graph, w.Landmarks, oracleRoute, sys.Config().Calibrate)
	truthSet := lr.IDSet()

	var resolved *RecommendResponse
	for round := 0; round < 200 && resolved == nil; round++ {
		state := decode[TaskStateResponse](t, mustGet(t,
			fmt.Sprintf("%s/api/tasks/%d", srv.URL, ticket.TaskID)))
		if state.Ticket.State != "open" {
			resolved = state.Result
			break
		}
		lm := *state.Ticket.CurrentQuestion
		answered := false
		for _, wid := range state.Ticket.AssignedWorkers {
			body, _ := json.Marshal(AnswerRequest{
				Worker: wid,
				Yes:    truthSet[landmark.ID(lm)],
			})
			r, err := http.Post(
				fmt.Sprintf("%s/api/tasks/%d/answer", srv.URL, ticket.TaskID),
				"application/json", bytes.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			if r.StatusCode == http.StatusConflict {
				r.Body.Close()
				continue // already answered or question advanced
			}
			if r.StatusCode != http.StatusOK {
				t.Fatalf("answer status = %d", r.StatusCode)
			}
			ans := decode[AnswerResponse](t, r)
			answered = true
			if ans.Resolved != nil {
				resolved = ans.Resolved
				break
			}
			// Question may have advanced: refresh state.
			break
		}
		if !answered {
			t.Fatal("no answer accepted while task open")
		}
	}
	if resolved == nil {
		t.Fatal("task never resolved over HTTP")
	}
	if resolved.Stage != "crowd" || len(resolved.Route) < 2 {
		t.Errorf("resolved = %+v", resolved)
	}
}

func TestAsyncHTTPValidation(t *testing.T) {
	srv, _, _ := asyncServer(t)
	// Unknown task.
	r := mustGet(t, srv.URL+"/api/tasks/99999")
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Errorf("unknown task status = %d", r.StatusCode)
	}
	// Bad task id.
	r = mustGet(t, srv.URL+"/api/tasks/abc")
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Errorf("bad id status = %d", r.StatusCode)
	}
	// Bad worker id.
	r = mustGet(t, srv.URL+"/api/workers/xyz/tasks")
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Errorf("bad worker status = %d", r.StatusCode)
	}
	// Unknown worker has no tasks (empty list, 200).
	r = mustGet(t, srv.URL+"/api/workers/424242/tasks")
	if r.StatusCode != http.StatusOK {
		t.Errorf("unknown worker status = %d", r.StatusCode)
	}
	var tasks []WorkerTaskInfo
	_ = json.NewDecoder(r.Body).Decode(&tasks)
	r.Body.Close()
	if len(tasks) != 0 {
		t.Errorf("unknown worker tasks = %v", tasks)
	}
}

func TestAsyncHTTPExpire(t *testing.T) {
	srv, w, _ := asyncServer(t)
	trip := w.Data.Trips[2]
	reqBody, _ := json.Marshal(RecommendRequest{
		From: trip.Route.Source(), To: trip.Route.Dest(), DepartMin: float64(trip.Depart),
	})
	resp := postJSON(t, srv.URL+"/api/recommend/async", json.RawMessage(reqBody))
	out := decode[AsyncRecommendResponse](t, resp)
	if out.Ticket == nil {
		t.Skip("TR resolved directly")
	}
	r, err := http.Post(fmt.Sprintf("%s/api/tasks/%d/expire", srv.URL, out.Ticket.TaskID),
		"application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.StatusCode != http.StatusOK {
		t.Fatalf("expire status = %d", r.StatusCode)
	}
	ans := decode[AnswerResponse](t, r)
	if ans.State != "expired" || ans.Resolved == nil {
		t.Errorf("expire = %+v", ans)
	}
	// Second expiry conflicts.
	r2, _ := http.Post(fmt.Sprintf("%s/api/tasks/%d/expire", srv.URL, out.Ticket.TaskID),
		"application/json", nil)
	r2.Body.Close()
	if r2.StatusCode != http.StatusConflict {
		t.Errorf("double expire status = %d", r2.StatusCode)
	}
}
