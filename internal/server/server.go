// Package server exposes CrowdPlanner over HTTP (the paper's server layer;
// the mobile client is represented by any HTTP client — see the client
// package for the typed Go SDK).
//
// The current surface is versioned under /v1:
//
//	POST /v1/recommend         — process a route request through the full pipeline
//	POST /v1/recommend/batch   — fan N requests through the concurrent core
//	POST /v1/trajectories      — ingest observed trips into the live mining corpus
//	GET  /v1/health            — inventory, cache/store counters, per-endpoint metrics
//	GET  /v1/truths            — the verified-truth database (paginated)
//	GET  /v1/landmarks         — landmarks by significance (paginated)
//	GET  /v1/workers/top       — top-k eligible workers for a landmark list
//	GET  /v1/sources           — per-provider precision scoreboard
//	POST /v1/admin/snapshot    — persist full state through the storage backend
//
// plus the asynchronous task lifecycle (see async.go). Errors on /v1 use a
// uniform envelope {"error":{"code","message","request_id"}} with typed
// codes (see errors.go); every request carries an X-Request-ID, is access-
// logged, and is measured into the /v1/health endpoint metrics.
//
// The pre-versioning /api/* paths remain registered as deprecated aliases
// of the same handlers with their original payload shapes (bare arrays,
// string errors); they answer with a `Deprecation: true` header and a Link
// to their /v1 successor.
package server

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"strings"

	"crowdplanner/internal/core"
	"crowdplanner/internal/landmark"
	"crowdplanner/internal/roadnet"
	"crowdplanner/internal/routing"
	"crowdplanner/internal/store"
	"crowdplanner/internal/truth"
)

// Server wraps a core.System with an HTTP API.
type Server struct {
	sys      *core.System
	mux      *http.ServeMux
	metrics  *metricsRegistry
	logger   *log.Logger
	overload *overloadGuard // nil unless WithOverload was given

	batchMaxItems int
	batchParallel int
	trajMaxItems  int
}

// Option configures a Server.
type Option func(*Server)

// WithLogger enables access and panic logging (off by default so embedded
// test servers stay quiet).
func WithLogger(l *log.Logger) Option { return func(s *Server) { s.logger = l } }

// WithBatchLimits overrides the batch endpoint's bounds: maxItems caps the
// items per call (default 256), parallel bounds how many items run through
// the core at once (default 8). Non-positive values keep the defaults.
func WithBatchLimits(maxItems, parallel int) Option {
	return func(s *Server) {
		if maxItems > 0 {
			s.batchMaxItems = maxItems
		}
		if parallel > 0 {
			s.batchParallel = parallel
		}
	}
}

// WithTrajBatchLimit overrides how many trips one POST /v1/trajectories call
// may carry (default 1024). Non-positive keeps the default.
func WithTrajBatchLimit(maxItems int) Option {
	return func(s *Server) {
		if maxItems > 0 {
			s.trajMaxItems = maxItems
		}
	}
}

// New builds the server and its routes.
func New(sys *core.System, opts ...Option) *Server {
	s := &Server{
		sys: sys, mux: http.NewServeMux(), metrics: newMetricsRegistry(),
		batchMaxItems: 256, batchParallel: 8, trajMaxItems: 1024,
	}
	for _, o := range opts {
		o(s)
	}
	s.register("POST", "/recommend", s.handleRecommend)
	s.register("GET", "/health", s.handleHealth)
	s.register("GET", "/truths", s.handleTruths)
	s.register("GET", "/landmarks", s.handleLandmarks)
	s.register("GET", "/workers/top", s.handleTopWorkers)
	s.register("GET", "/sources", s.handleSources)
	s.registerAsync()
	s.registerV1Only("POST", "/recommend/batch", s.handleRecommendBatch)
	s.registerV1Only("POST", "/trajectories", s.handleIngestTrajectories)
	s.registerV1Only("POST", "/admin/snapshot", s.handleAdminSnapshot)
	// Unmatched /v1 requests get the envelope, not ServeMux's plain-text
	// 404/405, so code-switching clients can parse every /v1 error. This
	// prefix pattern also swallows the mux's method-mismatch handling, so
	// probe the other methods to tell 405 from 404.
	s.mux.HandleFunc("/v1/", func(w http.ResponseWriter, r *http.Request) {
		var allowed []string
		for _, m := range []string{http.MethodGet, http.MethodPost} {
			if m == r.Method {
				continue
			}
			probe := r.Clone(r.Context())
			probe.Method = m
			if _, pat := s.mux.Handler(probe); pat != "" && pat != "/v1/" {
				allowed = append(allowed, m)
			}
		}
		if len(allowed) > 0 {
			w.Header().Set("Allow", strings.Join(allowed, ", "))
			writeErr(w, r, true, http.StatusMethodNotAllowed, CodeMethodNotAllowed,
				"method %s not allowed for %s", r.Method, r.URL.Path)
			return
		}
		writeErr(w, r, true, http.StatusNotFound, CodeNotFound, "no such endpoint: %s %s", r.Method, r.URL.Path)
	})
	return s
}

// Handler returns the root handler: request-ID assignment, access logging,
// panic recovery, and (when configured) the overload admission layer around
// the versioned mux. Admission runs inside recovery so a shed response is
// logged and instrumented like any other, and after request-ID assignment
// so shed 429s still carry an X-Request-ID.
func (s *Server) Handler() http.Handler {
	return withRequestID(s.withAccessLog(s.withRecovery(s.withOverload(s.mux))))
}

// versionedHandler serves one endpoint for both surfaces; v1 selects the
// /v1 payload rules (error envelope, pagination) over the legacy ones.
type versionedHandler func(w http.ResponseWriter, r *http.Request, v1 bool)

// register installs h under /v1<path> and, as a deprecated alias with the
// legacy payload shapes, under /api<path>. Both registrations are
// instrumented for the per-endpoint metrics.
func (s *Server) register(method, path string, h versionedHandler) {
	s.registerV1Only(method, path, h)
	pat := method + " /api" + path
	s.mux.Handle(pat, s.instrument(pat, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", fmt.Sprintf("</v1%s>; rel=%q", path, "successor-version"))
		h(w, r, false)
	}))
}

// registerV1Only installs h under /v1<path> only (no legacy alias).
func (s *Server) registerV1Only(method, path string, h versionedHandler) {
	pat := method + " /v1" + path
	s.mux.Handle(pat, s.instrument(pat, func(w http.ResponseWriter, r *http.Request) {
		h(w, r, true)
	}))
}

// Page is the /v1 list envelope: one page of items plus the total count and
// the paging parameters that produced it.
type Page[T any] struct {
	Items  []T `json:"items"`
	Total  int `json:"total"`
	Limit  int `json:"limit"`
	Offset int `json:"offset"`
}

const (
	defaultPageLimit = 50
	maxPageLimit     = 500
)

// pageParams parses ?limit= and ?offset= with defaults and bounds.
func pageParams(r *http.Request) (limit, offset int, err error) {
	limit, offset = defaultPageLimit, 0
	if v := r.URL.Query().Get("limit"); v != "" {
		n, perr := strconv.Atoi(v)
		if perr != nil || n < 1 {
			return 0, 0, fmt.Errorf("bad limit parameter %q", v)
		}
		limit = min(n, maxPageLimit)
	}
	if v := r.URL.Query().Get("offset"); v != "" {
		n, perr := strconv.Atoi(v)
		if perr != nil || n < 0 {
			return 0, 0, fmt.Errorf("bad offset parameter %q", v)
		}
		offset = n
	}
	return limit, offset, nil
}

// paginate clips items to [offset, offset+limit) and wraps them in a Page.
func paginate[T any](items []T, limit, offset int) Page[T] {
	total := len(items)
	lo := min(offset, total)
	hi := min(lo+limit, total)
	return Page[T]{Items: items[lo:hi], Total: total, Limit: limit, Offset: offset}
}

// RecommendRequest is the POST /v1/recommend body.
type RecommendRequest struct {
	From        roadnet.NodeID `json:"from"`
	To          roadnet.NodeID `json:"to"`
	DepartMin   float64        `json:"depart_min"` // minutes since Monday 00:00
	DeadlineMin float64        `json:"deadline_min,omitempty"`
}

// RecommendResponse is the POST /v1/recommend reply.
type RecommendResponse struct {
	Route      []roadnet.NodeID `json:"route"`
	Stage      string           `json:"stage"`
	Confidence float64          `json:"confidence"`
	LengthM    float64          `json:"length_m"`
	TravelMin  float64          `json:"travel_min"`
	Candidates []CandidateInfo  `json:"candidates,omitempty"`
	Task       *TaskInfo        `json:"task,omitempty"`
}

// CandidateInfo summarizes one candidate route.
type CandidateInfo struct {
	Source  string  `json:"source"`
	Nodes   int     `json:"nodes"`
	LengthM float64 `json:"length_m"`
	Prior   float64 `json:"prior"`
}

// TaskInfo summarizes a generated crowd task.
type TaskInfo struct {
	ID                int64   `json:"id"`
	Questions         []int32 `json:"question_landmarks"`
	ExpectedQuestions float64 `json:"expected_questions"`
	QuestionsUsed     int     `json:"questions_used"`
	AnswersUsed       int     `json:"answers_used"`
	WorkersAssigned   int     `json:"workers_assigned"`
}

func (s *Server) handleRecommend(w http.ResponseWriter, r *http.Request, v1 bool) {
	var req RecommendRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, r, v1, http.StatusBadRequest, CodeInvalidJSON, "invalid JSON: %v", err)
		return
	}
	// r.Context() is cancelled when the client disconnects: the pipeline
	// aborts candidate fan-out and the crowd loop instead of burning CPU.
	resp, err := s.sys.Recommend(r.Context(), core.Request{
		From: req.From, To: req.To,
		Depart:      routing.SimTime(req.DepartMin),
		DeadlineMin: req.DeadlineMin,
	})
	if err != nil {
		writeCoreErr(w, r, v1, err)
		return
	}
	out := s.recommendResponse(resp, req.DepartMin)
	if resp.Task != nil {
		ti := &TaskInfo{
			ID:                resp.Task.ID,
			ExpectedQuestions: resp.Task.ExpectedQuestions(),
			WorkersAssigned:   len(resp.Workers),
		}
		for _, q := range resp.Task.Questions {
			ti.Questions = append(ti.Questions, int32(q))
		}
		if resp.Run != nil {
			ti.QuestionsUsed = resp.Run.QuestionsUsed
			ti.AnswersUsed = resp.Run.AnswersUsed
		}
		out.Task = ti
	}
	writeJSON(w, http.StatusOK, out)
}

// HealthResponse is the GET /api/health reply (and the core of /v1/health).
type HealthResponse struct {
	Status     string         `json:"status"`
	Nodes      int            `json:"nodes"`
	Edges      int            `json:"edges"`
	Landmarks  int            `json:"landmarks"`
	Workers    int            `json:"workers"`
	Truths     int            `json:"truths"`
	Trips      int            `json:"trips"` // trajectory corpus size (generated + ingested)
	RouteCache RouteCacheInfo `json:"route_cache"`
}

// HealthV1Response extends HealthResponse with serving metrics for /v1.
type HealthV1Response struct {
	HealthResponse
	OpenTasks int                        `json:"open_tasks"`
	UptimeSec float64                    `json:"uptime_sec"`
	Store     StoreInfo                  `json:"store"`
	Overload  OverloadInfo               `json:"overload"`
	Routing   routing.Stats              `json:"routing"`
	Endpoints map[string]EndpointMetrics `json:"endpoints"`
}

// StoreInfo reports the storage backend's counters (see internal/store),
// the append failures the serving path absorbed, and the circuit breaker's
// state over the backend.
type StoreInfo struct {
	store.Stats
	AppendErrors uint64            `json:"append_errors"`
	Breaker      core.BreakerStats `json:"breaker"`
}

// RouteCacheInfo reports the candidate route cache counters (all zero when
// the cache is disabled).
type RouteCacheInfo struct {
	Hits          uint64  `json:"hits"`
	Misses        uint64  `json:"misses"`
	HitRate       float64 `json:"hit_rate"`
	Evictions     uint64  `json:"evictions"`
	Invalidations uint64  `json:"invalidations"`
	Size          int     `json:"size"`
	Capacity      int     `json:"capacity"`
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request, v1 bool) {
	cs := s.sys.RouteCacheStats()
	status := "ok"
	if s.sys.Degraded() {
		// The storage circuit breaker is open: reads still serve, mutating
		// endpoints answer 503 (see rejectIfDegraded).
		status = "degraded"
	}
	base := HealthResponse{
		Status:    status,
		Nodes:     s.sys.Graph().NumNodes(),
		Edges:     s.sys.Graph().NumEdges(),
		Landmarks: s.sys.Landmarks().Len(),
		Workers:   s.sys.Pool().Len(),
		Truths:    s.sys.TruthDB().Len(),
		Trips:     s.sys.CorpusSize(),
		RouteCache: RouteCacheInfo{
			Hits: cs.Hits, Misses: cs.Misses, HitRate: cs.HitRate(),
			Evictions: cs.Evictions, Invalidations: cs.Invalidations,
			Size: cs.Size, Capacity: cs.Capacity,
		},
	}
	if !v1 {
		writeJSON(w, http.StatusOK, base)
		return
	}
	endpoints, uptime := s.metrics.snapshot()
	ss, appendErrs := s.sys.StoreStats()
	writeJSON(w, http.StatusOK, HealthV1Response{
		HealthResponse: base,
		OpenTasks:      s.sys.OpenTasks(),
		UptimeSec:      uptime,
		Store:          StoreInfo{Stats: ss, AppendErrors: appendErrs, Breaker: s.sys.BreakerStats()},
		Overload:       s.overloadInfo(),
		Routing:        s.sys.RoutingStats(),
		Endpoints:      endpoints,
	})
}

// SnapshotResponse is the POST /v1/admin/snapshot reply: the backend's
// counters after the snapshot landed.
type SnapshotResponse struct {
	OK    bool      `json:"ok"`
	Store StoreInfo `json:"store"`
}

// handleAdminSnapshot captures the system's full mutable state and persists
// it through the storage backend (compacting its WAL). With the in-memory
// backend this is a harmless no-op persistence-wise; with diskstore it is
// the operator's checkpoint lever (cpserver also snapshots on graceful
// shutdown).
func (s *Server) handleAdminSnapshot(w http.ResponseWriter, r *http.Request, v1 bool) {
	stats, err := s.sys.Snapshot()
	if err != nil {
		writeErr(w, r, v1, http.StatusInternalServerError, CodeInternal, "snapshot failed: %v", err)
		return
	}
	_, appendErrs := s.sys.StoreStats()
	writeJSON(w, http.StatusOK, SnapshotResponse{OK: true, Store: StoreInfo{Stats: stats, AppendErrors: appendErrs, Breaker: s.sys.BreakerStats()}})
}

// TruthInfo is one verified truth in GET /v1/truths.
type TruthInfo struct {
	From       roadnet.NodeID `json:"from"`
	To         roadnet.NodeID `json:"to"`
	Slot       int            `json:"slot"`
	Confidence float64        `json:"confidence"`
	Crowd      bool           `json:"crowd"`
	Nodes      int            `json:"nodes"`
}

func (s *Server) handleTruths(w http.ResponseWriter, r *http.Request, v1 bool) {
	toInfo := func(entries []truth.Entry) []TruthInfo {
		out := make([]TruthInfo, 0, len(entries))
		for _, e := range entries {
			out = append(out, TruthInfo{
				From: e.From, To: e.To, Slot: e.Slot,
				Confidence: e.Confidence, Crowd: e.Crowd, Nodes: len(e.Route.Nodes),
			})
		}
		return out
	}
	if !v1 {
		writeJSON(w, http.StatusOK, toInfo(s.sys.TruthDB().Entries()))
		return
	}
	limit, offset, err := pageParams(r)
	if err != nil {
		writeErr(w, r, v1, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return
	}
	// Copy only the requested page out of the store, not the whole database
	// per request.
	entries, total := s.sys.TruthDB().EntriesRange(offset, limit)
	writeJSON(w, http.StatusOK, Page[TruthInfo]{
		Items: toInfo(entries), Total: total, Limit: limit, Offset: offset,
	})
}

// LandmarkInfo is one landmark in GET /v1/landmarks.
type LandmarkInfo struct {
	ID           int32   `json:"id"`
	Name         string  `json:"name"`
	Kind         string  `json:"kind"`
	Significance float64 `json:"significance"`
	X            float64 `json:"x"`
	Y            float64 `json:"y"`
}

func (s *Server) handleLandmarks(w http.ResponseWriter, r *http.Request, v1 bool) {
	toInfo := func(ls []*landmark.Landmark) []LandmarkInfo {
		// Allocated non-nil even when empty so the JSON is [] rather than null.
		out := make([]LandmarkInfo, 0, len(ls))
		for _, l := range ls {
			out = append(out, LandmarkInfo{
				ID: int32(l.ID), Name: l.Name, Kind: l.Kind.String(),
				Significance: l.Significance, X: l.Pt.X, Y: l.Pt.Y,
			})
		}
		return out
	}
	if !v1 {
		top := 20
		if v := r.URL.Query().Get("top"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 1 {
				writeErr(w, r, v1, http.StatusBadRequest, CodeBadRequest, "bad top parameter %q", v)
				return
			}
			top = n
		}
		writeJSON(w, http.StatusOK, toInfo(s.sys.Landmarks().TopBySignificance(top)))
		return
	}
	limit, offset, err := pageParams(r)
	if err != nil {
		writeErr(w, r, v1, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return
	}
	// Page over the sorted set first so only the returned slice (≤ 500
	// entries) is converted, not all landmarks per request.
	page := paginate(s.sys.Landmarks().TopBySignificance(s.sys.Landmarks().Len()), limit, offset)
	writeJSON(w, http.StatusOK, Page[LandmarkInfo]{
		Items: toInfo(page.Items), Total: page.Total, Limit: page.Limit, Offset: page.Offset,
	})
}

// WorkerInfo is one ranked worker in GET /v1/workers/top.
type WorkerInfo struct {
	ID     int32   `json:"id"`
	Score  float64 `json:"score"`
	Reward float64 `json:"reward"`
}

func (s *Server) handleTopWorkers(w http.ResponseWriter, r *http.Request, v1 bool) {
	q := r.URL.Query()
	var lids []landmark.ID
	for _, part := range strings.Split(q.Get("landmarks"), ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil {
			writeErr(w, r, v1, http.StatusBadRequest, CodeBadRequest, "bad landmark id %q", part)
			return
		}
		lids = append(lids, landmark.ID(n))
	}
	if len(lids) == 0 {
		writeErr(w, r, v1, http.StatusBadRequest, CodeBadRequest, "landmarks parameter required")
		return
	}
	k := 5
	if v := q.Get("k"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeErr(w, r, v1, http.StatusBadRequest, CodeBadRequest, "bad k parameter %q", v)
			return
		}
		k = n
	}
	// TopWorkers holds the system's pool lock and snapshots the mutable
	// fields, keeping the ranking and reward balances consistent with
	// concurrent reward write-backs.
	ranked := s.sys.TopWorkers(lids, k, s.sys.Config().Select)
	out := make([]WorkerInfo, 0, len(ranked))
	for _, rk := range ranked {
		out = append(out, WorkerInfo{ID: int32(rk.ID), Score: rk.Score, Reward: rk.Reward})
	}
	writeJSON(w, http.StatusOK, out)
}

// SourceInfo is one provider's scoreboard entry in GET /v1/sources.
type SourceInfo struct {
	Source    string  `json:"source"`
	Wins      int     `json:"wins"`
	Total     int     `json:"total"`
	Precision float64 `json:"precision"`
}

// handleSources reports the per-provider precision scoreboard (the quality
// control of route sources; paper §VI future work).
func (s *Server) handleSources(w http.ResponseWriter, _ *http.Request, _ bool) {
	stats := s.sys.SourceStats()
	out := make([]SourceInfo, 0, len(stats))
	for _, st := range stats {
		out = append(out, SourceInfo{
			Source: st.Source, Wins: st.Wins, Total: st.Total, Precision: st.Precision(),
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
