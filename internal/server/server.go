// Package server exposes CrowdPlanner over HTTP (the paper's server layer;
// the mobile client is represented by any HTTP client). Endpoints:
//
//	POST /api/recommend   — process a route request through the full pipeline
//	GET  /api/health      — system inventory and liveness
//	GET  /api/truths      — the verified-truth database
//	GET  /api/landmarks   — landmarks by significance
//	GET  /api/workers/top — top-k eligible workers for a landmark list
//	GET  /api/sources     — per-provider precision scoreboard
//
// plus the asynchronous task lifecycle (see async.go).
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"crowdplanner/internal/core"
	"crowdplanner/internal/landmark"
	"crowdplanner/internal/roadnet"
	"crowdplanner/internal/routing"
)

// Server wraps a core.System with an HTTP API.
type Server struct {
	sys *core.System
	mux *http.ServeMux
}

// New builds the server and its routes.
func New(sys *core.System) *Server {
	s := &Server{sys: sys, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /api/recommend", s.handleRecommend)
	s.mux.HandleFunc("GET /api/health", s.handleHealth)
	s.mux.HandleFunc("GET /api/truths", s.handleTruths)
	s.mux.HandleFunc("GET /api/landmarks", s.handleLandmarks)
	s.mux.HandleFunc("GET /api/workers/top", s.handleTopWorkers)
	s.mux.HandleFunc("GET /api/sources", s.handleSources)
	s.registerAsync()
	return s
}

// Handler returns the root handler.
func (s *Server) Handler() http.Handler { return s.mux }

// RecommendRequest is the POST /api/recommend body.
type RecommendRequest struct {
	From        roadnet.NodeID `json:"from"`
	To          roadnet.NodeID `json:"to"`
	DepartMin   float64        `json:"depart_min"` // minutes since Monday 00:00
	DeadlineMin float64        `json:"deadline_min,omitempty"`
}

// RecommendResponse is the POST /api/recommend reply.
type RecommendResponse struct {
	Route      []roadnet.NodeID `json:"route"`
	Stage      string           `json:"stage"`
	Confidence float64          `json:"confidence"`
	LengthM    float64          `json:"length_m"`
	TravelMin  float64          `json:"travel_min"`
	Candidates []CandidateInfo  `json:"candidates,omitempty"`
	Task       *TaskInfo        `json:"task,omitempty"`
}

// CandidateInfo summarizes one candidate route.
type CandidateInfo struct {
	Source  string  `json:"source"`
	Nodes   int     `json:"nodes"`
	LengthM float64 `json:"length_m"`
	Prior   float64 `json:"prior"`
}

// TaskInfo summarizes a generated crowd task.
type TaskInfo struct {
	ID                int64   `json:"id"`
	Questions         []int32 `json:"question_landmarks"`
	ExpectedQuestions float64 `json:"expected_questions"`
	QuestionsUsed     int     `json:"questions_used"`
	AnswersUsed       int     `json:"answers_used"`
	WorkersAssigned   int     `json:"workers_assigned"`
}

func (s *Server) handleRecommend(w http.ResponseWriter, r *http.Request) {
	var req RecommendRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	resp, err := s.sys.Recommend(core.Request{
		From: req.From, To: req.To,
		Depart:      routing.SimTime(req.DepartMin),
		DeadlineMin: req.DeadlineMin,
	})
	if err != nil {
		status := http.StatusUnprocessableEntity
		if strings.Contains(err.Error(), "invalid request") {
			status = http.StatusBadRequest
		}
		httpError(w, status, "%v", err)
		return
	}
	out := RecommendResponse{
		Route:      resp.Route.Nodes,
		Stage:      resp.Stage.String(),
		Confidence: resp.Confidence,
		LengthM:    resp.Route.Length(s.sys.Graph()),
		TravelMin:  routing.TravelMinutes(s.sys.Graph(), resp.Route, routing.SimTime(req.DepartMin)),
	}
	for _, c := range resp.Candidates {
		out.Candidates = append(out.Candidates, CandidateInfo{
			Source:  c.Source,
			Nodes:   len(c.Route.Nodes),
			LengthM: c.Route.Length(s.sys.Graph()),
			Prior:   c.Prior,
		})
	}
	if resp.Task != nil {
		ti := &TaskInfo{
			ID:                resp.Task.ID,
			ExpectedQuestions: resp.Task.ExpectedQuestions(),
			WorkersAssigned:   len(resp.Workers),
		}
		for _, q := range resp.Task.Questions {
			ti.Questions = append(ti.Questions, int32(q))
		}
		if resp.Run != nil {
			ti.QuestionsUsed = resp.Run.QuestionsUsed
			ti.AnswersUsed = resp.Run.AnswersUsed
		}
		out.Task = ti
	}
	writeJSON(w, http.StatusOK, out)
}

// HealthResponse is the GET /api/health reply.
type HealthResponse struct {
	Status     string         `json:"status"`
	Nodes      int            `json:"nodes"`
	Edges      int            `json:"edges"`
	Landmarks  int            `json:"landmarks"`
	Workers    int            `json:"workers"`
	Truths     int            `json:"truths"`
	RouteCache RouteCacheInfo `json:"route_cache"`
}

// RouteCacheInfo reports the candidate route cache counters (all zero when
// the cache is disabled).
type RouteCacheInfo struct {
	Hits          uint64  `json:"hits"`
	Misses        uint64  `json:"misses"`
	HitRate       float64 `json:"hit_rate"`
	Evictions     uint64  `json:"evictions"`
	Invalidations uint64  `json:"invalidations"`
	Size          int     `json:"size"`
	Capacity      int     `json:"capacity"`
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	cs := s.sys.RouteCacheStats()
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:    "ok",
		Nodes:     s.sys.Graph().NumNodes(),
		Edges:     s.sys.Graph().NumEdges(),
		Landmarks: s.sys.Landmarks().Len(),
		Workers:   s.sys.Pool().Len(),
		Truths:    s.sys.TruthDB().Len(),
		RouteCache: RouteCacheInfo{
			Hits: cs.Hits, Misses: cs.Misses, HitRate: cs.HitRate(),
			Evictions: cs.Evictions, Invalidations: cs.Invalidations,
			Size: cs.Size, Capacity: cs.Capacity,
		},
	})
}

// TruthInfo is one verified truth in GET /api/truths.
type TruthInfo struct {
	From       roadnet.NodeID `json:"from"`
	To         roadnet.NodeID `json:"to"`
	Slot       int            `json:"slot"`
	Confidence float64        `json:"confidence"`
	Crowd      bool           `json:"crowd"`
	Nodes      int            `json:"nodes"`
}

func (s *Server) handleTruths(w http.ResponseWriter, _ *http.Request) {
	entries := s.sys.TruthDB().Entries()
	out := make([]TruthInfo, 0, len(entries))
	for _, e := range entries {
		out = append(out, TruthInfo{
			From: e.From, To: e.To, Slot: e.Slot,
			Confidence: e.Confidence, Crowd: e.Crowd, Nodes: len(e.Route.Nodes),
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// LandmarkInfo is one landmark in GET /api/landmarks.
type LandmarkInfo struct {
	ID           int32   `json:"id"`
	Name         string  `json:"name"`
	Kind         string  `json:"kind"`
	Significance float64 `json:"significance"`
	X            float64 `json:"x"`
	Y            float64 `json:"y"`
}

func (s *Server) handleLandmarks(w http.ResponseWriter, r *http.Request) {
	top := 20
	if v := r.URL.Query().Get("top"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			httpError(w, http.StatusBadRequest, "bad top parameter %q", v)
			return
		}
		top = n
	}
	var out []LandmarkInfo
	for _, l := range s.sys.Landmarks().TopBySignificance(top) {
		out = append(out, LandmarkInfo{
			ID: int32(l.ID), Name: l.Name, Kind: l.Kind.String(),
			Significance: l.Significance, X: l.Pt.X, Y: l.Pt.Y,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// WorkerInfo is one ranked worker in GET /api/workers/top.
type WorkerInfo struct {
	ID     int32   `json:"id"`
	Score  float64 `json:"score"`
	Reward float64 `json:"reward"`
}

func (s *Server) handleTopWorkers(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var lids []landmark.ID
	for _, part := range strings.Split(q.Get("landmarks"), ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad landmark id %q", part)
			return
		}
		lids = append(lids, landmark.ID(n))
	}
	if len(lids) == 0 {
		httpError(w, http.StatusBadRequest, "landmarks parameter required")
		return
	}
	k := 5
	if v := q.Get("k"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			httpError(w, http.StatusBadRequest, "bad k parameter %q", v)
			return
		}
		k = n
	}
	// TopWorkers holds the system's pool lock and snapshots the mutable
	// fields, keeping the ranking and reward balances consistent with
	// concurrent reward write-backs.
	ranked := s.sys.TopWorkers(lids, k, s.sys.Config().Select)
	out := make([]WorkerInfo, 0, len(ranked))
	for _, rk := range ranked {
		out = append(out, WorkerInfo{ID: int32(rk.ID), Score: rk.Score, Reward: rk.Reward})
	}
	writeJSON(w, http.StatusOK, out)
}

// SourceInfo is one provider's scoreboard entry in GET /api/sources.
type SourceInfo struct {
	Source    string  `json:"source"`
	Wins      int     `json:"wins"`
	Total     int     `json:"total"`
	Precision float64 `json:"precision"`
}

// handleSources reports the per-provider precision scoreboard (the quality
// control of route sources; paper §VI future work).
func (s *Server) handleSources(w http.ResponseWriter, _ *http.Request) {
	stats := s.sys.SourceStats()
	out := make([]SourceInfo, 0, len(stats))
	for _, st := range stats {
		out = append(out, SourceInfo{
			Source: st.Source, Wins: st.Wins, Total: st.Total, Precision: st.Precision(),
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}
