package server

import (
	"sync"
	"time"
)

// EndpointMetrics is the per-endpoint slice of GET /v1/health: request
// counts, error counts by class, and latency aggregates since process start.
type EndpointMetrics struct {
	Count     uint64  `json:"count"`
	Errors4xx uint64  `json:"errors_4xx"`
	Errors5xx uint64  `json:"errors_5xx"`
	AvgMs     float64 `json:"avg_ms"`
	MaxMs     float64 `json:"max_ms"`
}

type endpointCounters struct {
	count, e4xx, e5xx uint64
	totalNs, maxNs    int64
}

// metricsRegistry aggregates per-route-pattern latency and status counters.
// One mutex suffices: observations are a few ns of bookkeeping, far off the
// request hot path compared to the pipeline work they measure.
type metricsRegistry struct {
	mu        sync.Mutex
	started   time.Time
	byPattern map[string]*endpointCounters
}

func newMetricsRegistry() *metricsRegistry {
	return &metricsRegistry{started: time.Now(), byPattern: make(map[string]*endpointCounters)}
}

func (m *metricsRegistry) observe(pattern string, status int, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := m.byPattern[pattern]
	if c == nil {
		c = &endpointCounters{}
		m.byPattern[pattern] = c
	}
	c.count++
	switch {
	case status >= 500:
		c.e5xx++
	case status >= 400:
		c.e4xx++
	}
	ns := d.Nanoseconds()
	c.totalNs += ns
	if ns > c.maxNs {
		c.maxNs = ns
	}
}

// snapshot returns the per-endpoint aggregates and the uptime in seconds.
func (m *metricsRegistry) snapshot() (map[string]EndpointMetrics, float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]EndpointMetrics, len(m.byPattern))
	for pat, c := range m.byPattern {
		em := EndpointMetrics{
			Count: c.count, Errors4xx: c.e4xx, Errors5xx: c.e5xx,
			MaxMs: float64(c.maxNs) / 1e6,
		}
		if c.count > 0 {
			em.AvgMs = float64(c.totalNs) / float64(c.count) / 1e6
		}
		out[pat] = em
	}
	return out, time.Since(m.started).Seconds()
}
