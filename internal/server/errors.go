package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"

	"crowdplanner/internal/core"
)

// ErrorCode is a stable, machine-readable error identifier. Codes are part
// of the /v1 contract: clients switch on the code, never on the message.
type ErrorCode string

// The /v1 error codes and the HTTP statuses they ride on.
const (
	// CodeInvalidJSON (400): the request body failed to parse.
	CodeInvalidJSON ErrorCode = "invalid_json"
	// CodeBadRequest (400): a parameter or field is malformed or out of range.
	CodeBadRequest ErrorCode = "bad_request"
	// CodeNotFound (404): the referenced task, resource, or endpoint does
	// not exist.
	CodeNotFound ErrorCode = "not_found"
	// CodeMethodNotAllowed (405): the path exists under another HTTP method.
	CodeMethodNotAllowed ErrorCode = "method_not_allowed"
	// CodeTaskClosed (409): the task already resolved or expired.
	CodeTaskClosed ErrorCode = "task_closed"
	// CodeAlreadyAnswered (409): the worker already answered this question.
	CodeAlreadyAnswered ErrorCode = "already_answered"
	// CodeNotAssigned (403): the worker is not assigned to the task.
	CodeNotAssigned ErrorCode = "not_assigned"
	// CodeNoCandidates (422): no route provider produced a candidate.
	CodeNoCandidates ErrorCode = "no_candidates"
	// CodeCancelled (499): the client went away before the work finished.
	CodeCancelled ErrorCode = "cancelled"
	// CodeDeadlineExceeded (504): the request's deadline passed server-side.
	CodeDeadlineExceeded ErrorCode = "deadline_exceeded"
	// CodeTooLarge (413): the batch exceeds the configured item limit.
	CodeTooLarge ErrorCode = "too_large"
	// CodeOverloaded (429): the bounded admission queue is full; the load
	// was shed. Retry after the Retry-After hint.
	CodeOverloaded ErrorCode = "overloaded"
	// CodeRateLimited (429): the per-client token bucket is empty. Retry
	// after the Retry-After hint.
	CodeRateLimited ErrorCode = "rate_limited"
	// CodeDegraded (503): the storage circuit breaker is open; mutating
	// endpoints are read-only until the backend heals.
	CodeDegraded ErrorCode = "degraded"
	// CodeUnprocessable (422): the pipeline failed for a request-specific
	// reason not covered by a more precise code.
	CodeUnprocessable ErrorCode = "unprocessable"
	// CodeInternal (500): a handler panicked; the request ID locates the log.
	CodeInternal ErrorCode = "internal"
)

// statusClientClosedRequest is the de-facto status (nginx's 499) for a
// request abandoned by its client; no standard code exists.
const statusClientClosedRequest = 499

// ErrorBody is the `error` object of the /v1 envelope:
//
//	{"error": {"code": "bad_request", "message": "...", "request_id": "..."}}
type ErrorBody struct {
	Code      ErrorCode `json:"code"`
	Message   string    `json:"message"`
	RequestID string    `json:"request_id,omitempty"`
}

type errorEnvelope struct {
	Error ErrorBody `json:"error"`
}

// classify maps an error from the serving core onto its HTTP status and /v1
// error code using the core's sentinel errors — never string matching.
func classify(err error) (int, ErrorCode) {
	switch {
	case errors.Is(err, core.ErrBadRequest):
		return http.StatusBadRequest, CodeBadRequest
	case errors.Is(err, core.ErrNoCandidates):
		return http.StatusUnprocessableEntity, CodeNoCandidates
	case errors.Is(err, core.ErrUnknownTask):
		return http.StatusNotFound, CodeNotFound
	case errors.Is(err, core.ErrTaskClosed):
		return http.StatusConflict, CodeTaskClosed
	case errors.Is(err, core.ErrAlreadyAnswer):
		return http.StatusConflict, CodeAlreadyAnswered
	case errors.Is(err, core.ErrNotAssigned):
		return http.StatusForbidden, CodeNotAssigned
	case errors.Is(err, context.Canceled):
		return statusClientClosedRequest, CodeCancelled
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, CodeDeadlineExceeded
	default:
		return http.StatusUnprocessableEntity, CodeUnprocessable
	}
}

// writeErr writes an error in the surface's shape: the /v1 envelope, or the
// legacy `{"error": "<message>"}` for the deprecated /api aliases.
func writeErr(w http.ResponseWriter, r *http.Request, v1 bool, status int, code ErrorCode, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	if !v1 {
		writeJSON(w, status, map[string]string{"error": msg})
		return
	}
	writeJSON(w, status, errorEnvelope{Error: ErrorBody{
		Code: code, Message: msg, RequestID: RequestIDFrom(r.Context()),
	}})
}

// writeCoreErr classifies a core error and writes it.
func writeCoreErr(w http.ResponseWriter, r *http.Request, v1 bool, err error) {
	status, code := classify(err)
	writeErr(w, r, v1, status, code, "%v", err)
}
