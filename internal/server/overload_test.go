package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"crowdplanner/internal/core"
	"crowdplanner/internal/store/faultstore"
	"crowdplanner/internal/store/memstore"
)

func TestTokenBucketRefill(t *testing.T) {
	g := newOverloadGuard(OverloadConfig{RatePerSec: 2, Burst: 2})
	base := time.Unix(1000, 0)
	for i := 0; i < 2; i++ {
		if ok, _ := g.allow("addr:a", base); !ok {
			t.Fatalf("request %d within burst was limited", i)
		}
	}
	ok, wait := g.allow("addr:a", base)
	if ok {
		t.Fatal("third request on an empty bucket allowed")
	}
	if wait <= 0 || wait > time.Second {
		t.Fatalf("retry hint = %v, want (0, 1s]", wait)
	}
	// Another client has its own bucket.
	if ok, _ := g.allow("key:other", base); !ok {
		t.Fatal("distinct client shares the dry bucket")
	}
	// Half a second refills one token at 2/s.
	if ok, _ := g.allow("addr:a", base.Add(500*time.Millisecond)); !ok {
		t.Fatal("bucket did not refill")
	}
}

func TestRateLimitEndpoint(t *testing.T) {
	_, w := testServer(t)
	ts := httptest.NewServer(New(w.System, WithOverload(OverloadConfig{
		RatePerSec: 0.0001, Burst: 1,
	})).Handler())
	defer ts.Close()

	resp := mustGet(t, ts.URL+"/v1/truths")
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first request status = %d", resp.StatusCode)
	}
	resp = mustGet(t, ts.URL+"/v1/truths")
	if resp.Header.Get("Retry-After") == "" {
		t.Error("rate-limited response missing Retry-After")
	}
	decodeEnvelope(t, resp, http.StatusTooManyRequests, string(CodeRateLimited))

	// A different API key is a different bucket.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/truths", nil)
	req.Header.Set("X-API-Key", "someone-else")
	r2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("distinct-key request status = %d", r2.StatusCode)
	}

	// Health stays reachable however dry the bucket is, and reports the
	// rejection count.
	for i := 0; i < 3; i++ {
		hr := mustGet(t, ts.URL+"/v1/health")
		if hr.StatusCode != http.StatusOK {
			t.Fatalf("health request %d status = %d (must be exempt)", i, hr.StatusCode)
		}
		if i < 2 {
			hr.Body.Close()
			continue
		}
		h := decode[HealthV1Response](t, hr)
		if !h.Overload.Enabled || h.Overload.RateLimited < 1 {
			t.Fatalf("health overload section = %+v", h.Overload)
		}
	}
}

// blockingServer wires the overload middleware around a handler the test can
// hold open and release, for deterministic queue-state control.
func blockingServer(t *testing.T, w *core.Scenario, cfg OverloadConfig) (*httptest.Server, *Server, chan struct{}, chan struct{}) {
	t.Helper()
	s := New(w.System, WithOverload(cfg))
	entered := make(chan struct{}, 64)
	release := make(chan struct{}, 64)
	h := s.withOverload(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		entered <- struct{}{}
		<-release
		rw.WriteHeader(http.StatusOK)
	}))
	ts := httptest.NewServer(withRequestID(h))
	t.Cleanup(ts.Close)
	return ts, s, entered, release
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestAdmissionQueueShedsBeyondBounds(t *testing.T) {
	_, w := testServer(t)
	ts, s, entered, release := blockingServer(t, w, OverloadConfig{MaxConcurrent: 1, MaxQueue: 1})
	g := s.overload

	status := make(chan int, 4)
	get := func() {
		resp, err := http.Get(ts.URL + "/v1/truths")
		if err != nil {
			t.Error(err)
			status <- -1
			return
		}
		resp.Body.Close()
		status <- resp.StatusCode
	}

	go get() // A: takes the service slot
	<-entered
	go get() // B: waits in the queue
	waitFor(t, "request B to queue", func() bool { return g.queued.Load() == 1 })

	// C: queue full → shed with 429 + Retry-After.
	resp, err := http.Get(ts.URL + "/v1/truths")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed response missing Retry-After")
	}
	decodeEnvelope(t, resp, http.StatusTooManyRequests, string(CodeOverloaded))
	if g.shed.Load() != 1 {
		t.Fatalf("shed counter = %d, want 1", g.shed.Load())
	}

	// Release A; B is admitted from the queue and completes too.
	release <- struct{}{}
	<-entered
	release <- struct{}{}
	for i := 0; i < 2; i++ {
		if code := <-status; code != http.StatusOK {
			t.Fatalf("admitted request %d finished with %d", i, code)
		}
	}
	waitFor(t, "slots to drain", func() bool {
		return g.queued.Load() == 0 && len(g.sem) == 0
	})
}

func TestQueuedRequestAbortsWithCaller(t *testing.T) {
	_, w := testServer(t)
	ts, s, entered, release := blockingServer(t, w, OverloadConfig{MaxConcurrent: 1, MaxQueue: 4})
	g := s.overload

	done := make(chan struct{})
	go func() {
		resp, err := http.Get(ts.URL + "/v1/truths")
		if err == nil {
			resp.Body.Close()
		}
		close(done)
	}()
	<-entered

	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/truths", nil)
	errc := make(chan error, 1)
	go func() {
		_, err := http.DefaultClient.Do(req)
		errc <- err
	}()
	waitFor(t, "request to queue", func() bool { return g.queued.Load() == 1 })

	// The caller gives up; its queue slot must be returned, not leaked.
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("cancelled request returned no error")
	}
	waitFor(t, "queue slot release", func() bool { return g.queued.Load() == 0 })

	release <- struct{}{}
	<-done
}

func TestRequestTimeoutBudget(t *testing.T) {
	_, w := testServer(t)
	s := New(w.System, WithOverload(OverloadConfig{RequestTimeout: 50 * time.Millisecond}))
	var sawDeadline bool
	h := s.withOverload(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		_, sawDeadline = r.Context().Deadline()
		rw.WriteHeader(http.StatusOK)
	}))
	ts := httptest.NewServer(h)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/recommend")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !sawDeadline {
		t.Fatal("admitted request carried no deadline")
	}

	// End to end: a budget the pipeline cannot meet surfaces as 504.
	tiny := httptest.NewServer(New(w.System, WithOverload(OverloadConfig{RequestTimeout: time.Nanosecond})).Handler())
	defer tiny.Close()
	trip := w.Data.Trips[0]
	resp = postJSON(t, tiny.URL+"/v1/recommend", RecommendRequest{
		From: trip.Route.Source(), To: trip.Route.Dest(), DepartMin: float64(trip.Depart),
	})
	decodeEnvelope(t, resp, http.StatusGatewayTimeout, string(CodeDeadlineExceeded))
}

func TestOverloadBurstNoGoroutineLeak(t *testing.T) {
	_, w := testServer(t)
	ts, s, entered, release := blockingServer(t, w, OverloadConfig{MaxConcurrent: 2, MaxQueue: 2})
	g := s.overload
	before := runtime.NumGoroutine()

	const n = 20
	var wg sync.WaitGroup
	var ok200, shed429 sync.Map
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/v1/truths")
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusOK:
				ok200.Store(i, true)
			case http.StatusTooManyRequests:
				shed429.Store(i, true)
			default:
				t.Errorf("request %d: status %d", i, resp.StatusCode)
			}
		}()
	}
	// Keep the pipeline moving: every admitted request gets released.
	go func() {
		for range entered {
			release <- struct{}{}
		}
	}()
	wg.Wait()
	close(entered)

	oks, sheds := 0, 0
	ok200.Range(func(any, any) bool { oks++; return true })
	shed429.Range(func(any, any) bool { sheds++; return true })
	if oks+sheds != n || oks < 2 {
		t.Fatalf("burst of %d: %d served, %d shed", n, oks, sheds)
	}
	if int(g.shed.Load()) != sheds {
		t.Fatalf("shed counter = %d, clients saw %d", g.shed.Load(), sheds)
	}

	waitFor(t, "goroutines to drain", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= before+8
	})
}

// degradedWorld builds a private scenario whose storage backend fails every
// append on command, with a hair-trigger breaker.
func degradedWorld(t *testing.T) (*core.Scenario, *faultstore.Store, *httptest.Server) {
	t.Helper()
	fs := faultstore.New(memstore.New(), faultstore.FailAppends(nil))
	cfg := core.SmallScenarioConfig()
	cfg.System.Store = fs
	cfg.System.Breaker = core.BreakerConfig{Threshold: 2, ProbeEvery: 1}
	w := core.BuildScenario(cfg)
	ts := httptest.NewServer(New(w.System).Handler())
	t.Cleanup(ts.Close)
	return w, fs, ts
}

// nextODFunc yields trips with pairwise-distinct OD pairs, so every
// recommend commits a fresh truth (reuse would skip the append).
func nextODFunc(w *core.Scenario) func(t *testing.T) RecommendRequest {
	seen := map[[2]int64]bool{}
	i := 0
	return func(t *testing.T) RecommendRequest {
		t.Helper()
		for ; i < len(w.Data.Trips); i++ {
			tr := w.Data.Trips[i]
			if tr.Route.Empty() {
				continue
			}
			key := [2]int64{int64(tr.Route.Source()), int64(tr.Route.Dest())}
			if seen[key] {
				continue
			}
			seen[key] = true
			i++
			return RecommendRequest{From: tr.Route.Source(), To: tr.Route.Dest(), DepartMin: float64(tr.Depart)}
		}
		t.Fatal("ran out of distinct ODs")
		return RecommendRequest{}
	}
}

func TestDegradedModeEndToEnd(t *testing.T) {
	w, fs, ts := degradedWorld(t)
	nextOD := nextODFunc(w)

	// Recommends keep succeeding while their truth commits fail; after the
	// threshold the breaker opens.
	for i := 0; i < 20 && !w.System.Degraded(); i++ {
		resp := postJSON(t, ts.URL+"/v1/recommend", nextOD(t))
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("recommend %d status = %d while backend sick (must stay served)", i, resp.StatusCode)
		}
	}
	if !w.System.Degraded() {
		t.Fatal("breaker never opened")
	}

	h := decode[HealthV1Response](t, mustGet(t, ts.URL+"/v1/health"))
	if h.Status != "degraded" {
		t.Fatalf("health status = %q, want degraded", h.Status)
	}
	if h.Store.Breaker.State != core.BreakerOpen {
		t.Fatalf("breaker state = %q, want open", h.Store.Breaker.State)
	}

	// Mutating endpoints are read-only: 503 + Retry-After.
	resp := postJSON(t, ts.URL+"/v1/trajectories", IngestRequest{})
	if resp.Header.Get("Retry-After") == "" {
		t.Error("degraded 503 missing Retry-After")
	}
	decodeEnvelope(t, resp, http.StatusServiceUnavailable, string(CodeDegraded))
	resp = postJSON(t, ts.URL+"/v1/recommend/async", RecommendRequest{})
	decodeEnvelope(t, resp, http.StatusServiceUnavailable, string(CodeDegraded))

	// Reads and synchronous recommends still serve.
	resp = postJSON(t, ts.URL+"/v1/recommend", nextOD(t))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded recommend status = %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Heal lever 1: backend recovers, operator snapshots. The snapshot is
	// never short-circuited and its success closes the breaker.
	fs.SetPlan(faultstore.Healthy())
	resp = postJSON(t, ts.URL+"/v1/admin/snapshot", struct{}{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("admin snapshot status = %d", resp.StatusCode)
	}
	resp.Body.Close()
	if w.System.Degraded() {
		t.Fatal("snapshot success did not close the breaker")
	}
	h = decode[HealthV1Response](t, mustGet(t, ts.URL+"/v1/health"))
	if h.Status != "ok" {
		t.Fatalf("healed health status = %q", h.Status)
	}
	var tripReq IngestRequest
	for _, tr := range w.Data.Trips {
		if tr.Route.Empty() {
			continue
		}
		trip := TrajTrip{Driver: int32(tr.Driver), DepartMin: float64(tr.Depart) + 33}
		for _, n := range tr.Route.Nodes {
			trip.Nodes = append(trip.Nodes, int64(n))
		}
		tripReq.Trips = append(tripReq.Trips, trip)
		break
	}
	resp = postJSON(t, ts.URL+"/v1/trajectories", tripReq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-heal ingest status = %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Heal lever 2: re-open the breaker, then let probe traffic close it —
	// the half-open path. With ProbeEvery=1 the first recommend's truth
	// append after the backend heals is the successful probe.
	fs.SetPlan(faultstore.FailAppends(nil))
	for i := 0; i < 20 && !w.System.Degraded(); i++ {
		postJSON(t, ts.URL+"/v1/recommend", nextOD(t)).Body.Close()
	}
	if !w.System.Degraded() {
		t.Fatal("breaker did not re-open")
	}
	fs.SetPlan(faultstore.Healthy())
	for i := 0; i < 5 && w.System.Degraded(); i++ {
		postJSON(t, ts.URL+"/v1/recommend", nextOD(t)).Body.Close()
	}
	if w.System.Degraded() {
		t.Fatal("probe traffic did not close the breaker")
	}
	st := w.System.BreakerStats()
	if st.Probes == 0 || st.Opens != 2 {
		t.Fatalf("breaker stats after recovery = %+v, want probes>0, opens=2", st)
	}
	h = decode[HealthV1Response](t, mustGet(t, ts.URL+"/v1/health"))
	if h.Status != "ok" || h.Store.Breaker.State != core.BreakerClosed {
		t.Fatalf("final health = %q / breaker %q", h.Status, h.Store.Breaker.State)
	}
}
