package server

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sort"

	"crowdplanner/internal/core"
	"crowdplanner/internal/roadnet"
	"crowdplanner/internal/routing"
	"crowdplanner/internal/traj"
)

// Trajectory ingestion: POST /v1/trajectories streams observed trips into
// the live corpus. Each trip is validated against the road network; valid
// trips become visible to the popular-route miners immediately and are
// persisted through the storage backend (they survive a restart when the
// server runs with -data-dir). Invalid trips are reported per item without
// failing the batch, mirroring /v1/recommend/batch semantics.

// TrajTrip is one trip in the POST /v1/trajectories body: the map-matched
// route plus its departure time and the driver who drove it.
type TrajTrip struct {
	Driver    int32   `json:"driver"`
	DepartMin float64 `json:"depart_min"` // minutes since Monday 00:00
	Nodes     []int64 `json:"nodes"`      // route node sequence
}

// IngestRequest is the POST /v1/trajectories body.
type IngestRequest struct {
	Trips []TrajTrip `json:"trips"`
}

// IngestResponse is its reply.
type IngestResponse struct {
	Accepted   int                    `json:"accepted"`
	Rejected   []core.IngestRejection `json:"rejected"`
	TotalTrips int                    `json:"total_trips"`
}

func (s *Server) handleIngestTrajectories(w http.ResponseWriter, r *http.Request, v1 bool) {
	// Ingested trips must be durable to be honest: while the storage
	// breaker is open their append would be short-circuited, so the whole
	// endpoint is refused (503) rather than accepting data that would
	// vanish on restart.
	if s.rejectIfDegraded(w, r, v1) {
		return
	}
	var req IngestRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, r, v1, http.StatusBadRequest, CodeInvalidJSON, "invalid JSON: %v", err)
		return
	}
	if len(req.Trips) == 0 {
		writeErr(w, r, v1, http.StatusBadRequest, CodeBadRequest, "trips array is empty")
		return
	}
	if len(req.Trips) > s.trajMaxItems {
		writeErr(w, r, v1, http.StatusRequestEntityTooLarge, CodeTooLarge,
			"batch has %d trips, limit is %d", len(req.Trips), s.trajMaxItems)
		return
	}
	// Node IDs arrive as int64 but roadnet.NodeID is int32: values outside
	// the int32 range must be rejected here, not narrowed — a silent wrap
	// could alias a garbage ID onto a valid node and slip a corrupt trip
	// past the core's range check into the mining indexes and the WAL.
	var trips []traj.Trajectory
	var kept []int // original index of each trip handed to the core
	rejected := []core.IngestRejection{}
	for i, t := range req.Trips {
		nodes, err := narrowNodes(t.Nodes)
		if err != "" {
			rejected = append(rejected, core.IngestRejection{Index: i, Reason: err})
			continue
		}
		kept = append(kept, i)
		trips = append(trips, traj.Trajectory{
			Driver: traj.DriverID(t.Driver),
			Depart: routing.SimTime(t.DepartMin),
			Route:  roadnet.Route{Nodes: nodes},
		})
	}
	rep := s.sys.IngestTrips(trips)
	for _, r := range rep.Rejected {
		rejected = append(rejected, core.IngestRejection{Index: kept[r.Index], Reason: r.Reason})
	}
	sort.Slice(rejected, func(a, b int) bool { return rejected[a].Index < rejected[b].Index })
	writeJSON(w, http.StatusOK, IngestResponse{
		Accepted: rep.Accepted, Rejected: rejected, TotalTrips: rep.TotalTrips,
	})
}

// narrowNodes converts wire node IDs to roadnet.NodeID, refusing values the
// int32 domain cannot represent. A non-empty string is the rejection reason.
func narrowNodes(in []int64) ([]roadnet.NodeID, string) {
	nodes := make([]roadnet.NodeID, len(in))
	for j, n := range in {
		if n < math.MinInt32 || n > math.MaxInt32 {
			return nil, fmt.Sprintf("route node %d outside the representable ID range", n)
		}
		nodes[j] = roadnet.NodeID(n)
	}
	return nodes, ""
}
