package server

import (
	"encoding/json"
	"errors"
	"net/http"
	"sync"

	"crowdplanner/internal/core"
	"crowdplanner/internal/routing"
)

// maxBatchBodyBytes bounds the batch request body; 256 full items fit in a
// small fraction of this.
const maxBatchBodyBytes = 4 << 20

// BatchRecommendRequest is the POST /v1/recommend/batch body: up to the
// server's configured limit (default 256) of independent recommend requests.
type BatchRecommendRequest struct {
	Items []RecommendRequest `json:"items"`
}

// BatchItemResult is one item's outcome. Exactly one of Result and Error is
// set; Status is the HTTP status the item would have received standalone.
type BatchItemResult struct {
	Index  int                `json:"index"`
	Status int                `json:"status"`
	Result *RecommendResponse `json:"result,omitempty"`
	Error  *ErrorBody         `json:"error,omitempty"`
}

// BatchRecommendResponse is the batch reply. The call itself is 200 as long
// as the batch was well-formed; per-item failures are reported in place so
// one bad OD pair doesn't void the other results.
type BatchRecommendResponse struct {
	Results   []BatchItemResult `json:"results"`
	Succeeded int               `json:"succeeded"`
	Failed    int               `json:"failed"`
}

// handleRecommendBatch fans the items through the concurrent core with
// bounded parallelism (WithBatchLimits), amortizing per-request HTTP
// overhead for bulk clients. The request context covers the whole batch: a
// disconnect cancels in-flight items and fails the rest as cancelled.
func (s *Server) handleRecommendBatch(w http.ResponseWriter, r *http.Request, v1 bool) {
	// The item-count check below only runs after decoding, so cap the body
	// itself: without this a single huge request could exhaust memory.
	body := http.MaxBytesReader(w, r.Body, maxBatchBodyBytes)
	var req BatchRecommendRequest
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeErr(w, r, v1, http.StatusRequestEntityTooLarge, CodeTooLarge,
				"request body exceeds %d bytes", tooBig.Limit)
			return
		}
		writeErr(w, r, v1, http.StatusBadRequest, CodeInvalidJSON, "invalid JSON: %v", err)
		return
	}
	if len(req.Items) == 0 {
		writeErr(w, r, v1, http.StatusBadRequest, CodeBadRequest, "items must be non-empty")
		return
	}
	if len(req.Items) > s.batchMaxItems {
		writeErr(w, r, v1, http.StatusRequestEntityTooLarge, CodeTooLarge,
			"batch of %d items exceeds the limit of %d", len(req.Items), s.batchMaxItems)
		return
	}

	ctx := r.Context()
	results := make([]BatchItemResult, len(req.Items))
	sem := make(chan struct{}, s.batchParallel)
	var wg sync.WaitGroup
	for i, item := range req.Items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
			case <-ctx.Done():
				status, code := classify(ctx.Err())
				results[i] = BatchItemResult{Index: i, Status: status,
					Error: &ErrorBody{Code: code, Message: ctx.Err().Error()}}
				return
			}
			resp, err := s.sys.Recommend(ctx, core.Request{
				From: item.From, To: item.To,
				Depart:      routing.SimTime(item.DepartMin),
				DeadlineMin: item.DeadlineMin,
			})
			if err != nil {
				status, code := classify(err)
				results[i] = BatchItemResult{Index: i, Status: status,
					Error: &ErrorBody{Code: code, Message: err.Error()}}
				return
			}
			results[i] = BatchItemResult{Index: i, Status: http.StatusOK,
				Result: s.recommendResponse(resp, item.DepartMin)}
		}()
	}
	wg.Wait()

	out := BatchRecommendResponse{Results: results}
	for _, res := range results {
		if res.Error == nil {
			out.Succeeded++
		} else {
			out.Failed++
		}
	}
	writeJSON(w, http.StatusOK, out)
}
