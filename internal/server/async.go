package server

import (
	"encoding/json"
	"net/http"
	"strconv"

	"crowdplanner/internal/core"
	"crowdplanner/internal/routing"
	"crowdplanner/internal/worker"
)

// Async endpoints implement the paper's client protocol: the server
// publishes tasks, the assigned workers' clients poll for open questions
// and submit answers, and the task resolves when the early-stop component
// is confident.
//
//	POST /v1/recommend/async          — resolve via TR or publish a task
//	GET  /v1/tasks/{id}               — task state (and result once closed)
//	POST /v1/tasks/{id}/answer        — submit one worker's answer
//	POST /v1/tasks/{id}/expire        — force-close on deadline
//	GET  /v1/workers/{id}/tasks       — open questions for a worker
func (s *Server) registerAsync() {
	s.register("POST", "/recommend/async", s.handleRecommendAsync)
	s.register("GET", "/tasks/{id}", s.handleTaskState)
	s.register("POST", "/tasks/{id}/answer", s.handleTaskAnswer)
	s.register("POST", "/tasks/{id}/expire", s.handleTaskExpire)
	s.register("GET", "/workers/{id}/tasks", s.handleWorkerTasks)
}

// AsyncRecommendResponse is the POST /v1/recommend/async reply: either a
// resolved recommendation or a published task ticket.
type AsyncRecommendResponse struct {
	Resolved *RecommendResponse `json:"resolved,omitempty"`
	Ticket   *TicketInfo        `json:"ticket,omitempty"`
}

// TicketInfo describes a published (pending) task.
type TicketInfo struct {
	TaskID          int64   `json:"task_id"`
	State           string  `json:"state"`
	CurrentQuestion *int32  `json:"current_question,omitempty"` // landmark ID
	AssignedWorkers []int32 `json:"assigned_workers"`
}

func ticketInfo(p *core.PendingTask) *TicketInfo {
	state, _ := p.Status() // synchronized: answers may be arriving concurrently
	ti := &TicketInfo{TaskID: p.ID, State: state.String()}
	if lm, ok := p.CurrentQuestion(); ok {
		v := int32(lm)
		ti.CurrentQuestion = &v
	}
	for _, r := range p.Assigned {
		ti.AssignedWorkers = append(ti.AssignedWorkers, int32(r.Worker.ID))
	}
	return ti
}

func (s *Server) recommendResponse(resp *core.Response, depart float64) *RecommendResponse {
	out := &RecommendResponse{
		Route:      resp.Route.Nodes,
		Stage:      resp.Stage.String(),
		Confidence: resp.Confidence,
		LengthM:    resp.Route.Length(s.sys.Graph()),
		TravelMin:  routing.TravelMinutes(s.sys.Graph(), resp.Route, routing.SimTime(depart)),
	}
	for _, c := range resp.Candidates {
		out.Candidates = append(out.Candidates, CandidateInfo{
			Source:  c.Source,
			Nodes:   len(c.Route.Nodes),
			LengthM: c.Route.Length(s.sys.Graph()),
			Prior:   c.Prior,
		})
	}
	return out
}

func (s *Server) handleRecommendAsync(w http.ResponseWriter, r *http.Request, v1 bool) {
	// Publishing a crowd task writes task-lifecycle records; with the
	// storage breaker open those would be short-circuited and the task lost
	// on restart, so async publication is refused while degraded (the
	// synchronous /v1/recommend keeps serving).
	if s.rejectIfDegraded(w, r, v1) {
		return
	}
	var req RecommendRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, r, v1, http.StatusBadRequest, CodeInvalidJSON, "invalid JSON: %v", err)
		return
	}
	resp, ticket, err := s.sys.RecommendAsync(r.Context(), core.Request{
		From: req.From, To: req.To,
		Depart:      routing.SimTime(req.DepartMin),
		DeadlineMin: req.DeadlineMin,
	})
	if err != nil {
		writeCoreErr(w, r, v1, err)
		return
	}
	out := AsyncRecommendResponse{}
	if resp != nil {
		out.Resolved = s.recommendResponse(resp, req.DepartMin)
	} else {
		out.Ticket = ticketInfo(ticket)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) taskFromPath(w http.ResponseWriter, r *http.Request, v1 bool) (*core.PendingTask, bool) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		writeErr(w, r, v1, http.StatusBadRequest, CodeBadRequest, "bad task id %q", r.PathValue("id"))
		return nil, false
	}
	p, ok := s.sys.PendingTask(id)
	if !ok {
		writeErr(w, r, v1, http.StatusNotFound, CodeNotFound, "unknown task %d", id)
		return nil, false
	}
	return p, true
}

// TaskStateResponse is the GET /v1/tasks/{id} reply.
type TaskStateResponse struct {
	Ticket *TicketInfo        `json:"ticket"`
	Result *RecommendResponse `json:"result,omitempty"`
}

func (s *Server) handleTaskState(w http.ResponseWriter, r *http.Request, v1 bool) {
	p, ok := s.taskFromPath(w, r, v1)
	if !ok {
		return
	}
	out := TaskStateResponse{Ticket: ticketInfo(p)}
	if _, result := p.Status(); result != nil {
		out.Result = s.recommendResponse(result, float64(p.Req.Depart))
	}
	writeJSON(w, http.StatusOK, out)
}

// AnswerRequest is the POST /v1/tasks/{id}/answer body.
type AnswerRequest struct {
	Worker int32 `json:"worker"`
	Yes    bool  `json:"yes"`
}

// AnswerResponse is its reply.
type AnswerResponse struct {
	State    string             `json:"state"`
	Resolved *RecommendResponse `json:"resolved,omitempty"`
}

func (s *Server) handleTaskAnswer(w http.ResponseWriter, r *http.Request, v1 bool) {
	if s.rejectIfDegraded(w, r, v1) {
		return
	}
	p, ok := s.taskFromPath(w, r, v1)
	if !ok {
		return
	}
	var req AnswerRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, r, v1, http.StatusBadRequest, CodeInvalidJSON, "invalid JSON: %v", err)
		return
	}
	resp, err := s.sys.SubmitAnswer(p.ID, worker.ID(req.Worker), req.Yes)
	if err != nil {
		writeCoreErr(w, r, v1, err)
		return
	}
	state, _ := p.Status()
	out := AnswerResponse{State: state.String()}
	if resp != nil {
		out.Resolved = s.recommendResponse(resp, float64(p.Req.Depart))
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleTaskExpire(w http.ResponseWriter, r *http.Request, v1 bool) {
	if s.rejectIfDegraded(w, r, v1) {
		return
	}
	p, ok := s.taskFromPath(w, r, v1)
	if !ok {
		return
	}
	resp, err := s.sys.ExpireTask(p.ID)
	if err != nil {
		writeCoreErr(w, r, v1, err)
		return
	}
	state, _ := p.Status()
	writeJSON(w, http.StatusOK, AnswerResponse{
		State:    state.String(),
		Resolved: s.recommendResponse(resp, float64(p.Req.Depart)),
	})
}

// WorkerTaskInfo is one open question for a worker.
type WorkerTaskInfo struct {
	TaskID   int64 `json:"task_id"`
	Landmark int32 `json:"landmark"`
}

func (s *Server) handleWorkerTasks(w http.ResponseWriter, r *http.Request, v1 bool) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeErr(w, r, v1, http.StatusBadRequest, CodeBadRequest, "bad worker id %q", r.PathValue("id"))
		return
	}
	out := []WorkerTaskInfo{}
	for _, p := range s.sys.PendingTasks(worker.ID(id)) {
		if lm, ok := p.CurrentQuestion(); ok {
			out = append(out, WorkerTaskInfo{TaskID: p.ID, Landmark: int32(lm)})
		}
	}
	writeJSON(w, http.StatusOK, out)
}
