package server

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"

	"crowdplanner/internal/core"
	"crowdplanner/internal/routing"
	"crowdplanner/internal/worker"
)

// Async endpoints implement the paper's client protocol: the server
// publishes tasks, the assigned workers' clients poll for open questions
// and submit answers, and the task resolves when the early-stop component
// is confident.
//
//	POST /api/recommend/async          — resolve via TR or publish a task
//	GET  /api/tasks/{id}               — task state (and result once closed)
//	POST /api/tasks/{id}/answer        — submit one worker's answer
//	POST /api/tasks/{id}/expire        — force-close on deadline
//	GET  /api/workers/{id}/tasks       — open questions for a worker
func (s *Server) registerAsync() {
	s.mux.HandleFunc("POST /api/recommend/async", s.handleRecommendAsync)
	s.mux.HandleFunc("GET /api/tasks/{id}", s.handleTaskState)
	s.mux.HandleFunc("POST /api/tasks/{id}/answer", s.handleTaskAnswer)
	s.mux.HandleFunc("POST /api/tasks/{id}/expire", s.handleTaskExpire)
	s.mux.HandleFunc("GET /api/workers/{id}/tasks", s.handleWorkerTasks)
}

// AsyncRecommendResponse is the POST /api/recommend/async reply: either a
// resolved recommendation or a published task ticket.
type AsyncRecommendResponse struct {
	Resolved *RecommendResponse `json:"resolved,omitempty"`
	Ticket   *TicketInfo        `json:"ticket,omitempty"`
}

// TicketInfo describes a published (pending) task.
type TicketInfo struct {
	TaskID          int64   `json:"task_id"`
	State           string  `json:"state"`
	CurrentQuestion *int32  `json:"current_question,omitempty"` // landmark ID
	AssignedWorkers []int32 `json:"assigned_workers"`
}

func ticketInfo(p *core.PendingTask) *TicketInfo {
	state, _ := p.Status() // synchronized: answers may be arriving concurrently
	ti := &TicketInfo{TaskID: p.ID, State: state.String()}
	if lm, ok := p.CurrentQuestion(); ok {
		v := int32(lm)
		ti.CurrentQuestion = &v
	}
	for _, r := range p.Assigned {
		ti.AssignedWorkers = append(ti.AssignedWorkers, int32(r.Worker.ID))
	}
	return ti
}

func (s *Server) recommendResponse(resp *core.Response, depart float64) *RecommendResponse {
	out := &RecommendResponse{
		Route:      resp.Route.Nodes,
		Stage:      resp.Stage.String(),
		Confidence: resp.Confidence,
		LengthM:    resp.Route.Length(s.sys.Graph()),
		TravelMin:  routing.TravelMinutes(s.sys.Graph(), resp.Route, routing.SimTime(depart)),
	}
	for _, c := range resp.Candidates {
		out.Candidates = append(out.Candidates, CandidateInfo{
			Source:  c.Source,
			Nodes:   len(c.Route.Nodes),
			LengthM: c.Route.Length(s.sys.Graph()),
			Prior:   c.Prior,
		})
	}
	return out
}

func (s *Server) handleRecommendAsync(w http.ResponseWriter, r *http.Request) {
	var req RecommendRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	resp, ticket, err := s.sys.RecommendAsync(core.Request{
		From: req.From, To: req.To,
		Depart:      routing.SimTime(req.DepartMin),
		DeadlineMin: req.DeadlineMin,
	})
	if err != nil {
		status := http.StatusUnprocessableEntity
		if errors.Is(err, core.ErrBadRequest) {
			status = http.StatusBadRequest
		}
		httpError(w, status, "%v", err)
		return
	}
	out := AsyncRecommendResponse{}
	if resp != nil {
		out.Resolved = s.recommendResponse(resp, req.DepartMin)
	} else {
		out.Ticket = ticketInfo(ticket)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) taskFromPath(w http.ResponseWriter, r *http.Request) (*core.PendingTask, bool) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad task id %q", r.PathValue("id"))
		return nil, false
	}
	p, ok := s.sys.PendingTask(id)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown task %d", id)
		return nil, false
	}
	return p, true
}

// TaskStateResponse is the GET /api/tasks/{id} reply.
type TaskStateResponse struct {
	Ticket *TicketInfo        `json:"ticket"`
	Result *RecommendResponse `json:"result,omitempty"`
}

func (s *Server) handleTaskState(w http.ResponseWriter, r *http.Request) {
	p, ok := s.taskFromPath(w, r)
	if !ok {
		return
	}
	out := TaskStateResponse{Ticket: ticketInfo(p)}
	if _, result := p.Status(); result != nil {
		out.Result = s.recommendResponse(result, float64(p.Req.Depart))
	}
	writeJSON(w, http.StatusOK, out)
}

// AnswerRequest is the POST /api/tasks/{id}/answer body.
type AnswerRequest struct {
	Worker int32 `json:"worker"`
	Yes    bool  `json:"yes"`
}

// AnswerResponse is its reply.
type AnswerResponse struct {
	State    string             `json:"state"`
	Resolved *RecommendResponse `json:"resolved,omitempty"`
}

func (s *Server) handleTaskAnswer(w http.ResponseWriter, r *http.Request) {
	p, ok := s.taskFromPath(w, r)
	if !ok {
		return
	}
	var req AnswerRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	resp, err := s.sys.SubmitAnswer(p.ID, worker.ID(req.Worker), req.Yes)
	switch {
	case errors.Is(err, core.ErrTaskClosed), errors.Is(err, core.ErrAlreadyAnswer):
		httpError(w, http.StatusConflict, "%v", err)
		return
	case errors.Is(err, core.ErrNotAssigned):
		httpError(w, http.StatusForbidden, "%v", err)
		return
	case err != nil:
		httpError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	state, _ := p.Status()
	out := AnswerResponse{State: state.String()}
	if resp != nil {
		out.Resolved = s.recommendResponse(resp, float64(p.Req.Depart))
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleTaskExpire(w http.ResponseWriter, r *http.Request) {
	p, ok := s.taskFromPath(w, r)
	if !ok {
		return
	}
	resp, err := s.sys.ExpireTask(p.ID)
	if errors.Is(err, core.ErrTaskClosed) {
		httpError(w, http.StatusConflict, "%v", err)
		return
	}
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, AnswerResponse{
		State:    p.State.String(),
		Resolved: s.recommendResponse(resp, float64(p.Req.Depart)),
	})
}

// WorkerTaskInfo is one open question for a worker.
type WorkerTaskInfo struct {
	TaskID   int64 `json:"task_id"`
	Landmark int32 `json:"landmark"`
}

func (s *Server) handleWorkerTasks(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad worker id %q", r.PathValue("id"))
		return
	}
	out := []WorkerTaskInfo{}
	for _, p := range s.sys.PendingTasks(worker.ID(id)) {
		if lm, ok := p.CurrentQuestion(); ok {
			out = append(out, WorkerTaskInfo{TaskID: p.ID, Landmark: int32(lm)})
		}
	}
	writeJSON(w, http.StatusOK, out)
}
