package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"

	"crowdplanner/internal/core"
	"crowdplanner/internal/store/diskstore"
)

// TestHealthReportsStore: /v1/health carries the storage backend section.
func TestHealthReportsStore(t *testing.T) {
	s, _ := testServer(t)
	resp, err := http.Get(s.URL + "/v1/health")
	if err != nil {
		t.Fatal(err)
	}
	h := decode[HealthV1Response](t, resp)
	if h.Store.Backend != "none" {
		t.Fatalf("store backend = %q, want none (default)", h.Store.Backend)
	}
}

// TestAdminSnapshotEndpoint drives the full operator loop over HTTP: serve a
// request against a disk-backed system, snapshot via the admin endpoint, and
// verify the backend compacted its WAL.
func TestAdminSnapshotEndpoint(t *testing.T) {
	dir := t.TempDir()
	ds, err := diskstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	cfg := core.SmallScenarioConfig()
	cfg.System.Store = ds
	scn := core.BuildScenario(cfg)
	if _, err := scn.System.LoadFromStore(context.Background()); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(New(scn.System).Handler())
	defer srv.Close()

	trip := scn.Data.Trips[0]
	resp := postJSON(t, srv.URL+"/v1/recommend", RecommendRequest{
		From: trip.Route.Source(), To: trip.Route.Dest(), DepartMin: float64(trip.Depart),
	})
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recommend status = %d", resp.StatusCode)
	}

	// The commit hit the WAL; health must show it.
	hr, err := http.Get(srv.URL + "/v1/health")
	if err != nil {
		t.Fatal(err)
	}
	h := decode[HealthV1Response](t, hr)
	if h.Store.Backend != "disk" || h.Store.TruthAppends == 0 {
		t.Fatalf("health store section = %+v", h.Store)
	}

	sr := postJSON(t, srv.URL+"/v1/admin/snapshot", struct{}{})
	if sr.StatusCode != http.StatusOK {
		t.Fatalf("snapshot status = %d", sr.StatusCode)
	}
	out := decode[SnapshotResponse](t, sr)
	if !out.OK || out.Store.Snapshots != 1 || out.Store.WALRecords != 0 {
		t.Fatalf("snapshot response = %+v", out)
	}

	// GET on the admin path is not a registered method.
	gr, err := http.Get(srv.URL + "/v1/admin/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	decodeEnvelope(t, gr, http.StatusMethodNotAllowed, "method_not_allowed")
}

// TestTruthsPaginationRange: the v1 handler pages straight out of the store
// (EntriesRange), and the page parameters behave as before the refactor.
func TestTruthsPaginationRange(t *testing.T) {
	s, w := testServer(t)
	// Ensure at least a few truths exist.
	for _, trip := range w.Data.Trips[:8] {
		if trip.Route.Empty() {
			continue
		}
		resp := postJSON(t, s.URL+"/v1/recommend", RecommendRequest{
			From: trip.Route.Source(), To: trip.Route.Dest(), DepartMin: float64(trip.Depart),
		})
		resp.Body.Close()
	}
	total := w.System.TruthDB().Len()
	if total < 2 {
		t.Skipf("scenario produced only %d truths", total)
	}

	resp, err := http.Get(s.URL + "/v1/truths?limit=2&offset=1")
	if err != nil {
		t.Fatal(err)
	}
	page := decode[Page[TruthInfo]](t, resp)
	if page.Total < total || len(page.Items) != 2 || page.Limit != 2 || page.Offset != 1 {
		t.Fatalf("page = total=%d items=%d limit=%d offset=%d (store has %d)",
			page.Total, len(page.Items), page.Limit, page.Offset, total)
	}
	// The page must equal the matching slice of the full listing.
	all, _ := w.System.TruthDB().EntriesRange(0, 0)
	if page.Items[0].From != all[1].From || page.Items[0].To != all[1].To {
		t.Fatalf("page[0] = %+v, want entry 1 = %+v", page.Items[0], all[1])
	}

	// Past-the-end offsets still produce a well-formed empty page.
	resp, err = http.Get(s.URL + "/v1/truths?offset=100000")
	if err != nil {
		t.Fatal(err)
	}
	empty := decode[Page[TruthInfo]](t, resp)
	if len(empty.Items) != 0 || empty.Total < total {
		t.Fatalf("past-the-end page = %+v", empty)
	}
}
