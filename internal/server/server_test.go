package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"crowdplanner/internal/core"
)

var (
	srvOnce sync.Once
	srv     *httptest.Server
	world   *core.Scenario
)

func testServer(t *testing.T) (*httptest.Server, *core.Scenario) {
	t.Helper()
	srvOnce.Do(func() {
		world = core.BuildScenario(core.SmallScenarioConfig())
		srv = httptest.NewServer(New(world.System).Handler())
	})
	return srv, world
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decode[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func TestHealth(t *testing.T) {
	s, w := testServer(t)
	resp, err := http.Get(s.URL + "/api/health")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	h := decode[HealthResponse](t, resp)
	if h.Status != "ok" || h.Nodes != w.Graph.NumNodes() || h.Workers != w.Pool.Len() {
		t.Errorf("health = %+v", h)
	}
}

func TestRecommendEndpoint(t *testing.T) {
	s, w := testServer(t)
	trip := w.Data.Trips[0]
	req := RecommendRequest{
		From:      trip.Route.Source(),
		To:        trip.Route.Dest(),
		DepartMin: float64(trip.Depart),
	}
	resp := postJSON(t, s.URL+"/api/recommend", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	out := decode[RecommendResponse](t, resp)
	if len(out.Route) < 2 {
		t.Fatalf("route = %v", out.Route)
	}
	if out.Route[0] != req.From || out.Route[len(out.Route)-1] != req.To {
		t.Error("route endpoints wrong")
	}
	if out.Stage == "" || out.LengthM <= 0 || out.TravelMin <= 0 {
		t.Errorf("summary fields: %+v", out)
	}
	// Truths grew; health reflects it.
	h := decode[HealthResponse](t, mustGet(t, s.URL+"/api/health"))
	if h.Truths < 1 {
		t.Error("truth DB should have entries after a request")
	}
}

func mustGet(t *testing.T, url string) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestRecommendBadInputs(t *testing.T) {
	s, _ := testServer(t)
	// Broken JSON.
	resp, err := http.Post(s.URL+"/api/recommend", "application/json", bytes.NewBufferString("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("broken JSON status = %d", resp.StatusCode)
	}
	// Same from/to.
	resp = postJSON(t, s.URL+"/api/recommend", RecommendRequest{From: 3, To: 3})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("same-node status = %d", resp.StatusCode)
	}
	// GET on a POST route.
	resp = mustGet(t, s.URL+"/api/recommend")
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET status = %d", resp.StatusCode)
	}
}

func TestLandmarksEndpoint(t *testing.T) {
	s, _ := testServer(t)
	resp := mustGet(t, s.URL+"/api/landmarks?top=5")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	ls := decode[[]LandmarkInfo](t, resp)
	if len(ls) != 5 {
		t.Fatalf("landmarks = %d", len(ls))
	}
	for i := 1; i < len(ls); i++ {
		if ls[i].Significance > ls[i-1].Significance {
			t.Error("landmarks not sorted by significance")
		}
	}
	resp = mustGet(t, s.URL+"/api/landmarks?top=zero")
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad top status = %d", resp.StatusCode)
	}
}

func TestTopWorkersEndpoint(t *testing.T) {
	s, w := testServer(t)
	// Use the three most significant landmarks as the ask.
	top := w.Landmarks.TopBySignificance(3)
	url := fmt.Sprintf("%s/api/workers/top?landmarks=%d,%d,%d&k=4",
		s.URL, top[0].ID, top[1].ID, top[2].ID)
	resp := mustGet(t, url)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	ws := decode[[]WorkerInfo](t, resp)
	if len(ws) == 0 || len(ws) > 4 {
		t.Errorf("workers = %d", len(ws))
	}
	for i := 1; i < len(ws); i++ {
		if ws[i].Score > ws[i-1].Score {
			t.Error("workers not sorted by score")
		}
	}
	// Missing landmarks param.
	resp = mustGet(t, s.URL+"/api/workers/top")
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing landmarks status = %d", resp.StatusCode)
	}
	// Garbage landmark ID.
	resp = mustGet(t, s.URL+"/api/workers/top?landmarks=a,b")
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad landmark status = %d", resp.StatusCode)
	}
	// Garbage k.
	resp = mustGet(t, fmt.Sprintf("%s/api/workers/top?landmarks=%d&k=-1", s.URL, top[0].ID))
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad k status = %d", resp.StatusCode)
	}
}

func TestTruthsEndpoint(t *testing.T) {
	s, w := testServer(t)
	// Ensure at least one truth exists.
	trip := w.Data.Trips[1]
	postJSON(t, s.URL+"/api/recommend", RecommendRequest{
		From: trip.Route.Source(), To: trip.Route.Dest(), DepartMin: float64(trip.Depart),
	}).Body.Close()
	resp := mustGet(t, s.URL+"/api/truths")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	truths := decode[[]TruthInfo](t, resp)
	if len(truths) == 0 {
		t.Error("no truths listed")
	}
	for _, tr := range truths {
		if tr.Nodes < 2 || tr.Confidence <= 0 {
			t.Errorf("bad truth %+v", tr)
		}
	}
}

func TestSourcesEndpoint(t *testing.T) {
	s, w := testServer(t)
	// Resolve at least one request so sources have outcomes.
	trip := w.Data.Trips[3]
	postJSON(t, s.URL+"/api/recommend", RecommendRequest{
		From: trip.Route.Source(), To: trip.Route.Dest(), DepartMin: float64(trip.Depart),
	}).Body.Close()
	resp := mustGet(t, s.URL+"/api/sources")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	sources := decode[[]SourceInfo](t, resp)
	if len(sources) == 0 {
		t.Fatal("no source stats after resolved requests")
	}
	for _, src := range sources {
		if src.Wins > src.Total || src.Precision <= 0 || src.Precision >= 1 {
			t.Errorf("bad source entry %+v", src)
		}
	}
}

func TestConcurrentRequests(t *testing.T) {
	s, w := testServer(t)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			trip := w.Data.Trips[i%len(w.Data.Trips)]
			if trip.Route.Empty() {
				return
			}
			req := RecommendRequest{
				From: trip.Route.Source(), To: trip.Route.Dest(),
				DepartMin: float64(trip.Depart),
			}
			b, _ := json.Marshal(req)
			resp, err := http.Post(s.URL+"/api/recommend", "application/json", bytes.NewReader(b))
			if err != nil {
				errs <- err
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d", resp.StatusCode)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
