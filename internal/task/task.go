package task

import (
	"fmt"

	"crowdplanner/internal/landmark"
)

// Config controls task generation.
type Config struct {
	// Algorithm selects the landmark-selection strategy; Greedy is the
	// production default, matching the paper's recommendation.
	Algorithm Algorithm
}

// DefaultConfig uses GreedySelecting.
func DefaultConfig() Config { return Config{Algorithm: Greedy} }

// Task is a generated crowdsourcing task: candidates, the selected question
// landmarks, and the ID3-ordered binary question tree.
type Task struct {
	ID         int64
	Candidates []Candidate
	// Questions are the selected landmark IDs (the question library LR).
	Questions []landmark.ID
	// Objective is the selection objective value (mean significance).
	Objective float64
	// Tree is the ID3-ordered question tree over Candidates.
	Tree *TreeNode
	// Priors are the normalized candidate priors used to build the tree.
	Priors []float64

	sel      *selector // retained for static-order baselines
	selected []int     // selection as selector indices
}

// Generate builds a task for the candidate routes. Candidates must be
// landmark-distinguishable; run MergeIndistinguishable first. The landmark
// set provides significances.
func Generate(id int64, set *landmark.Set, cands []Candidate, cfg Config) (*Task, error) {
	if len(cands) == 0 {
		return nil, ErrNoCandidates
	}
	sel, err := newSelector(set, cands)
	if err != nil {
		return nil, fmt.Errorf("task: building selector: %w", err)
	}
	subset, objective, err := sel.selectLandmarks(cfg.Algorithm)
	if err != nil {
		return nil, fmt.Errorf("task: selecting landmarks: %w", err)
	}

	priors := normalizedPriors(cands)
	candIdx := make([]int, len(cands))
	for i := range candIdx {
		candIdx[i] = i
	}
	tree := sel.buildTree(candIdx, subset, priors)

	return &Task{
		ID:         id,
		Candidates: cands,
		Questions:  sel.selectedIDs(subset),
		Objective:  objective,
		Tree:       tree,
		Priors:     priors,
		sel:        sel,
		selected:   subset,
	}, nil
}

// SelectOnly runs just the landmark-selection phase with the given
// algorithm, returning the selected landmark IDs and the objective value.
// Exposed for the selection-efficiency experiments (E3).
func SelectOnly(set *landmark.Set, cands []Candidate, algo Algorithm) ([]landmark.ID, float64, error) {
	sel, err := newSelector(set, cands)
	if err != nil {
		return nil, 0, err
	}
	subset, objective, err := sel.selectLandmarks(algo)
	if err != nil {
		return nil, 0, err
	}
	return sel.selectedIDs(subset), objective, nil
}

// BeneficialCount returns the number of beneficial landmarks (the selection
// search space size) for the candidate set.
func BeneficialCount(set *landmark.Set, cands []Candidate) (int, error) {
	sel, err := newSelector(set, cands)
	if err != nil {
		return 0, err
	}
	return len(sel.ids), nil
}

// ExpectedQuestionsStatic returns the prior-weighted expected number of
// questions when the task's selected questions are asked in the given fixed
// order. order holds indices into Questions; it must be a permutation of
// 0..len(Questions)-1. Used by the E2 ordering baselines.
func (t *Task) ExpectedQuestionsStatic(order []int) float64 {
	if t.sel == nil {
		return 0
	}
	mapped := make([]int, len(order))
	for i, o := range order {
		mapped[i] = t.selected[o]
	}
	cands := make([]int, len(t.Candidates))
	for i := range cands {
		cands[i] = i
	}
	return t.sel.staticOrderQuestions(mapped, cands, t.Priors)
}

// normalizedPriors returns the candidates' priors normalized to sum to 1,
// substituting a uniform distribution when they carry no mass.
func normalizedPriors(cands []Candidate) []float64 {
	priors := make([]float64, len(cands))
	var sum float64
	for i, c := range cands {
		if c.Prior > 0 {
			priors[i] = c.Prior
			sum += c.Prior
		}
	}
	if sum <= 0 {
		for i := range priors {
			priors[i] = 1 / float64(len(priors))
		}
		return priors
	}
	for i := range priors {
		priors[i] /= sum
	}
	return priors
}

// ExpectedQuestions is the prior-weighted expected number of questions of
// this task's tree.
func (t *Task) ExpectedQuestions() float64 {
	return ExpectedQuestions(t.Tree, t.Priors)
}

// MaxQuestions is the worst-case number of questions (tree depth).
func (t *Task) MaxQuestions() int {
	if t.Tree == nil {
		return 0
	}
	return t.Tree.Depth()
}

// Resolve walks the tree with an answer function (true = "yes, the best
// route passes this landmark") and returns the resolved candidate index.
func (t *Task) Resolve(answer func(landmark.ID) bool) int {
	n := t.Tree
	for n != nil && !n.IsLeaf() {
		if answer(n.Landmark) {
			n = n.Yes
		} else {
			n = n.No
		}
	}
	if n == nil {
		return 0
	}
	return n.Leaf()
}
