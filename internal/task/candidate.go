// Package task implements CrowdPlanner's task generation component: given a
// set of candidate routes, it selects a small set of highly significant
// landmarks that discriminates the candidates (paper §III-B, via brute
// force, Incremental Landmark Selecting, or GreedySelecting) and orders the
// resulting binary questions with an ID3 decision tree built on information
// strength (paper §III-C).
package task

import (
	"errors"
	"fmt"
	"sort"

	"crowdplanner/internal/calibrate"
	"crowdplanner/internal/landmark"
	"crowdplanner/internal/roadnet"
)

// Candidate is one candidate route under evaluation, with its landmark-based
// form and provenance.
type Candidate struct {
	Source string // which provider proposed it ("shortest", "MPR", ...)
	Route  roadnet.Route
	LRoute calibrate.LandmarkRoute
	// Prior is the prior probability that this candidate is the best route
	// (e.g. from the TR module's confidence scores). Zero priors are
	// replaced by a uniform distribution.
	Prior float64
}

// ErrTooManyCandidates limits tasks to 64 candidates (bitmask width); real
// tasks have a handful.
var ErrTooManyCandidates = errors.New("task: more than 64 candidate routes")

// ErrNoCandidates is returned for empty candidate sets.
var ErrNoCandidates = errors.New("task: no candidate routes")

// ErrNotDiscriminable is returned when two candidates pass exactly the same
// landmarks, so no landmark set can tell them apart. Callers should merge
// such candidates first (see MergeIndistinguishable).
var ErrNotDiscriminable = errors.New("task: candidates are landmark-indistinguishable")

// MergeIndistinguishable collapses candidates whose landmark sets are
// identical, keeping the one with the highest prior (ties: first). The
// returned slice preserves the original order of survivors; merged
// candidates transfer their prior mass to the survivor.
func MergeIndistinguishable(cands []Candidate) []Candidate {
	type group struct {
		idx   int
		prior float64
	}
	byKey := map[string]*group{}
	keys := make([]string, len(cands))
	for i, c := range cands {
		ids := make([]landmark.ID, len(c.LRoute.Landmarks))
		copy(ids, c.LRoute.Landmarks)
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		key := fmt.Sprint(ids)
		keys[i] = key
		if g, ok := byKey[key]; ok {
			g.prior += c.Prior
			if c.Prior > cands[g.idx].Prior {
				g.idx = i
			}
		} else {
			byKey[key] = &group{idx: i, prior: c.Prior}
		}
	}
	seen := map[string]bool{}
	var out []Candidate
	for i := range cands {
		k := keys[i]
		if seen[k] {
			continue
		}
		seen[k] = true
		g := byKey[k]
		surv := cands[g.idx]
		surv.Prior = g.prior
		out = append(out, surv)
	}
	return out
}

// selector holds the bitmask machinery shared by the three selection
// algorithms. Landmarks are the *beneficial* ones — on some but not all
// candidate routes (paper: L = ∪R − ∩R) — sorted by significance descending
// (ties: ID ascending).
type selector struct {
	n      int           // number of candidates
	ids    []landmark.ID // beneficial landmarks, significance-descending
	sigs   []float64     // parallel significances
	member []uint64      // member[j] bit i set ⇔ candidate i passes ids[j]
}

// newSelector builds the selection state. It requires 1..64 candidates that
// are pairwise distinguishable by the beneficial landmarks.
func newSelector(set *landmark.Set, cands []Candidate) (*selector, error) {
	n := len(cands)
	if n == 0 {
		return nil, ErrNoCandidates
	}
	if n > 64 {
		return nil, ErrTooManyCandidates
	}
	full := uint64(1)<<uint(n) - 1

	masks := map[landmark.ID]uint64{}
	for i, c := range cands {
		for _, id := range c.LRoute.Landmarks {
			masks[id] |= 1 << uint(i)
		}
	}
	type entry struct {
		id   landmark.ID
		sig  float64
		mask uint64
	}
	var entries []entry
	for id, m := range masks {
		if m == 0 || m == full {
			continue // non-beneficial: on none or on all
		}
		sig := 0.0
		if l := set.Get(id); l != nil {
			sig = l.Significance
		}
		entries = append(entries, entry{id: id, sig: sig, mask: m})
	}
	sort.Slice(entries, func(a, b int) bool {
		if entries[a].sig != entries[b].sig {
			return entries[a].sig > entries[b].sig
		}
		return entries[a].id < entries[b].id
	})

	s := &selector{n: n}
	for _, e := range entries {
		s.ids = append(s.ids, e.id)
		s.sigs = append(s.sigs, e.sig)
		s.member = append(s.member, e.mask)
	}
	if n > 1 && !s.discriminative(allIndices(len(s.ids))) {
		return nil, ErrNotDiscriminable
	}
	return s, nil
}

func allIndices(m int) []int {
	idx := make([]int, m)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// discriminative reports whether the landmark subset (indices into s.ids)
// separates every pair of candidates (paper Definition 4).
func (s *selector) discriminative(subset []int) bool {
	if s.n <= 1 {
		return true
	}
	if len(subset) <= 64 {
		// Fast path: per-candidate signature over the subset fits a word.
		keys := make([]uint64, s.n)
		for p, j := range subset {
			m := s.member[j]
			for i := 0; i < s.n; i++ {
				if m>>uint(i)&1 == 1 {
					keys[i] |= 1 << uint(p)
				}
			}
		}
		for i := 1; i < s.n; i++ {
			for k := 0; k < i; k++ {
				if keys[i] == keys[k] {
					return false
				}
			}
		}
		return true
	}
	// General path (only reachable from the full-set sanity check): pairwise
	// search for a separating landmark.
	for i := 1; i < s.n; i++ {
		for k := 0; k < i; k++ {
			sep := false
			for _, j := range subset {
				if (s.member[j]>>uint(i))&1 != (s.member[j]>>uint(k))&1 {
					sep = true
					break
				}
			}
			if !sep {
				return false
			}
		}
	}
	return true
}

// value is the paper's objective: mean significance of the subset.
func (s *selector) value(subset []int) float64 {
	if len(subset) == 0 {
		return 0
	}
	var sum float64
	for _, j := range subset {
		sum += s.sigs[j]
	}
	return sum / float64(len(subset))
}

// kmax is the paper's upper bound on |L|: the number of candidates (capped
// by the number of beneficial landmarks).
func (s *selector) kmax() int {
	k := s.n
	if m := len(s.ids); m < k {
		k = m
	}
	return k
}

// SelectedIDs maps subset indices to landmark IDs.
func (s *selector) selectedIDs(subset []int) []landmark.ID {
	out := make([]landmark.ID, len(subset))
	for i, j := range subset {
		out[i] = s.ids[j]
	}
	return out
}
