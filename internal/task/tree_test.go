package task

import (
	"math"
	"testing"
	"testing/quick"

	"crowdplanner/internal/landmark"
)

// fourCands builds 4 candidates separable by 3 landmarks:
//
//	cand 0: {l0}        cand 1: {l1}
//	cand 2: {l0,l1}     cand 3: {}  (passes only the shared l3)
func fourCands() (*landmark.Set, []Candidate) {
	set := mkSet(0.9, 0.8, 0.7, 0.6)
	cands := []Candidate{
		mkCand("c0", 0, 0, 3),
		mkCand("c1", 0, 1, 3),
		mkCand("c2", 0, 0, 1, 3),
		mkCand("c3", 0, 3),
	}
	return set, cands
}

func TestGenerateTaskBasics(t *testing.T) {
	set, cands := fourCands()
	tk, err := Generate(1, set, cands, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if tk.ID != 1 {
		t.Errorf("ID = %d", tk.ID)
	}
	if len(tk.Questions) < 2 || len(tk.Questions) > 4 {
		t.Errorf("questions = %v", tk.Questions)
	}
	if tk.Objective <= 0 {
		t.Errorf("objective = %v", tk.Objective)
	}
	if tk.Tree == nil {
		t.Fatal("no tree")
	}
	// Uniform priors by default.
	for _, p := range tk.Priors {
		if math.Abs(p-0.25) > 1e-9 {
			t.Errorf("priors = %v", tk.Priors)
		}
	}
}

func TestTreeLeavesPartitionCandidates(t *testing.T) {
	set, cands := fourCands()
	tk, err := Generate(1, set, cands, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]int{}
	var walk func(n *TreeNode)
	walk = func(n *TreeNode) {
		if n.IsLeaf() {
			if len(n.Candidates) != 1 {
				t.Errorf("leaf with %d candidates", len(n.Candidates))
			}
			seen[n.Leaf()]++
			return
		}
		walk(n.Yes)
		walk(n.No)
	}
	walk(tk.Tree)
	if len(seen) != 4 {
		t.Errorf("leaves cover %d candidates, want 4", len(seen))
	}
	for i, c := range seen {
		if c != 1 {
			t.Errorf("candidate %d appears in %d leaves", i, c)
		}
	}
}

func TestResolveEveryCandidate(t *testing.T) {
	set, cands := fourCands()
	tk, err := Generate(1, set, cands, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for want := range cands {
		truth := cands[want].LRoute.IDSet()
		got := tk.Resolve(func(l landmark.ID) bool { return truth[l] })
		if got != want {
			t.Errorf("Resolve(candidate %d) = %d", want, got)
		}
	}
}

func TestExpectedQuestionsBounds(t *testing.T) {
	set, cands := fourCands()
	tk, err := Generate(1, set, cands, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	exp := tk.ExpectedQuestions()
	// Binary-tree information bound: expected depth >= H(priors) = 2 bits
	// for 4 uniform candidates; and at most the question count.
	if exp < 2-1e-9 {
		t.Errorf("expected questions %v below entropy bound 2", exp)
	}
	if exp > float64(len(tk.Questions))+1e-9 {
		t.Errorf("expected questions %v above |L| = %d", exp, len(tk.Questions))
	}
	if tk.MaxQuestions() > len(tk.Questions) {
		t.Errorf("max questions %d above |L| = %d", tk.MaxQuestions(), len(tk.Questions))
	}
}

func TestSkewedPriorsReduceExpectedQuestions(t *testing.T) {
	set, cands := fourCands()
	// Uniform.
	uni, err := Generate(1, set, cands, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Heavily skewed towards candidate 3.
	skewed := make([]Candidate, len(cands))
	copy(skewed, cands)
	skewed[3].Prior = 0.97
	skewed[0].Prior, skewed[1].Prior, skewed[2].Prior = 0.01, 0.01, 0.01
	sk, err := Generate(2, set, skewed, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if sk.ExpectedQuestions() > uni.ExpectedQuestions()+1e-9 {
		t.Errorf("skewed priors should not increase expected questions: %v vs %v",
			sk.ExpectedQuestions(), uni.ExpectedQuestions())
	}
}

func TestEntropy(t *testing.T) {
	priors := []float64{0.25, 0.25, 0.25, 0.25}
	if h := entropy([]int{0, 1, 2, 3}, priors); math.Abs(h-2) > 1e-9 {
		t.Errorf("uniform H = %v, want 2", h)
	}
	if h := entropy([]int{0}, priors); h != 0 {
		t.Errorf("singleton H = %v", h)
	}
	if h := entropy(nil, priors); h != 0 {
		t.Errorf("empty H = %v", h)
	}
	skew := []float64{0.999, 0.0005, 0.0005}
	if h := entropy([]int{0, 1, 2}, skew); h > 0.1 {
		t.Errorf("near-certain H = %v, want ~0", h)
	}
}

func TestStaticOrderQuestions(t *testing.T) {
	set, cands := fourCands()
	sel, err := newSelector(set, cands)
	if err != nil {
		t.Fatal(err)
	}
	subset, _, err := sel.selectLandmarks(BruteForce)
	if err != nil {
		t.Fatal(err)
	}
	priors := normalizedPriors(cands)
	all := []int{0, 1, 2, 3}
	static := sel.staticOrderQuestions(subset, all, priors)
	if static <= 0 {
		t.Errorf("static expected = %v", static)
	}
	if static > float64(len(subset))+1e-9 {
		t.Errorf("static expected %v exceeds question count %d", static, len(subset))
	}
	// The adaptive ID3 tree should not ask more than the static order on
	// the same question set.
	tree := sel.buildTree(all, subset, priors)
	if ExpectedQuestions(tree, priors) > static+1e-9 {
		t.Errorf("ID3 %v should be <= static %v", ExpectedQuestions(tree, priors), static)
	}
}

func TestPropertyTreeInvariants(t *testing.T) {
	f := func(seed int64) bool {
		sel, ok := randomInstance(seed)
		if !ok {
			return true
		}
		subset, _, err := sel.greedy()
		if err != nil {
			return true
		}
		cands := make([]int, sel.n)
		priors := make([]float64, sel.n)
		for i := range cands {
			cands[i] = i
			priors[i] = 1 / float64(sel.n)
		}
		tree := sel.buildTree(cands, subset, priors)
		// (1) Every leaf resolves exactly one candidate; leaves partition.
		count := 0
		okTree := true
		var walk func(n *TreeNode, depth int)
		walk = func(n *TreeNode, depth int) {
			if n.IsLeaf() {
				if len(n.Candidates) != 1 {
					okTree = false
				}
				count++
				return
			}
			if n.Yes == nil || n.No == nil {
				okTree = false
				return
			}
			walk(n.Yes, depth+1)
			walk(n.No, depth+1)
		}
		walk(tree, 0)
		if !okTree || count != sel.n {
			t.Logf("seed %d: tree covers %d of %d candidates", seed, count, sel.n)
			return false
		}
		// (2) Expected depth within [H(p), |questions|].
		exp := ExpectedQuestions(tree, priors)
		h := entropy(cands, priors)
		if exp < h-1e-9 || exp > float64(len(subset))+1e-9 {
			t.Logf("seed %d: expected %v outside [%v, %d]", seed, exp, h, len(subset))
			return false
		}
		// (3) Resolution is consistent: answering per candidate i's
		// membership leads back to i.
		for i := 0; i < sel.n; i++ {
			n := tree
			for !n.IsLeaf() {
				// Find the question's index.
				var q int
				for j, id := range sel.ids {
					if id == n.Landmark {
						q = j
						break
					}
				}
				if sel.member[q]>>uint(i)&1 == 1 {
					n = n.Yes
				} else {
					n = n.No
				}
			}
			if n.Leaf() != i {
				t.Logf("seed %d: candidate %d resolves to %d", seed, i, n.Leaf())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestGenerateErrorPaths(t *testing.T) {
	set := mkSet(0.5)
	if _, err := Generate(1, set, nil, DefaultConfig()); err == nil {
		t.Error("empty candidates should error")
	}
	dup := []Candidate{mkCand("a", 0, 0), mkCand("b", 0, 0)}
	if _, err := Generate(1, set, dup, DefaultConfig()); err == nil {
		t.Error("indistinguishable candidates should error")
	}
}

func TestNormalizedPriors(t *testing.T) {
	cands := []Candidate{
		{Prior: 2}, {Prior: 1}, {Prior: 1},
	}
	p := normalizedPriors(cands)
	if math.Abs(p[0]-0.5) > 1e-9 || math.Abs(p[1]-0.25) > 1e-9 {
		t.Errorf("priors = %v", p)
	}
	// Zero priors -> uniform.
	p = normalizedPriors([]Candidate{{}, {}})
	if math.Abs(p[0]-0.5) > 1e-9 {
		t.Errorf("uniform priors = %v", p)
	}
}
