package task

import (
	"errors"
	"math"
	"math/bits"
	"sort"
)

// Algorithm names a landmark-selection strategy.
type Algorithm int

// Selection algorithms, in decreasing cost order.
const (
	// BruteForce enumerates every subset up to size n. Exponential;
	// reference implementation for tests and the E3 experiment.
	BruteForce Algorithm = iota
	// ILS is the paper's Incremental Landmark Selecting: bottom-up
	// enumeration of simplest discriminative sets with superset pruning,
	// completed by best-fill supersets.
	ILS
	// Greedy is the paper's GreedySelecting: significance-ordered recursive
	// expansion with tight upper-bound pruning.
	Greedy
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case BruteForce:
		return "BruteForce"
	case ILS:
		return "ILS"
	case Greedy:
		return "Greedy"
	default:
		return "Algorithm(?)"
	}
}

// ErrNoSelection is returned when no discriminative landmark subset of size
// at most n exists (cannot happen for pairwise-distinguishable candidates,
// see the package tests, but kept for safety).
var ErrNoSelection = errors.New("task: no discriminative landmark set within the size bound")

// errTooLarge guards the exponential algorithms against absurd inputs.
var errTooLarge = errors.New("task: too many beneficial landmarks for exhaustive selection")

// bruteForceLimit caps the beneficial-landmark count for BruteForce; beyond
// it the enumeration would exceed billions of subsets.
const bruteForceLimit = 26

// Select runs the chosen algorithm and returns the selected landmark subset
// (as indices into the selector) together with its objective value.
func (s *selector) selectLandmarks(algo Algorithm) ([]int, float64, error) {
	if len(s.ids) == 0 {
		if s.n <= 1 {
			return nil, 0, nil // single candidate: nothing to discriminate
		}
		return nil, 0, ErrNoSelection
	}
	switch algo {
	case BruteForce:
		return s.bruteForce()
	case ILS:
		return s.ils()
	case Greedy:
		return s.greedy()
	default:
		return s.greedy()
	}
}

// bruteForce enumerates all subsets of sizes 1..kmax and returns the
// discriminative one with maximum mean significance. Ties break towards the
// lexicographically smallest index set for determinism.
func (s *selector) bruteForce() ([]int, float64, error) {
	m := len(s.ids)
	if m > bruteForceLimit {
		return nil, 0, errTooLarge
	}
	kmax := s.kmax()
	var best []int
	bestVal := math.Inf(-1)
	subset := make([]int, 0, kmax)
	// Enumerate bitmasks of the m landmarks with popcount <= kmax.
	for mask := uint64(1); mask < uint64(1)<<uint(m); mask++ {
		if bits.OnesCount64(mask) > kmax {
			continue
		}
		subset = subset[:0]
		for j := 0; j < m; j++ {
			if mask>>uint(j)&1 == 1 {
				subset = append(subset, j)
			}
		}
		if !s.discriminative(subset) {
			continue
		}
		v := s.value(subset)
		if v > bestVal+1e-15 || (math.Abs(v-bestVal) <= 1e-15 && lexLess(subset, best)) {
			bestVal = v
			best = append([]int(nil), subset...)
		}
	}
	if best == nil {
		return nil, 0, ErrNoSelection
	}
	return best, bestVal, nil
}

func lexLess(a, b []int) bool {
	if b == nil {
		return true
	}
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// greedy implements GreedySelecting: depth-first expansion in significance
// order. Landmarks are pre-sorted by descending significance, so within a
// DFS chain every added landmark has significance at most the chain's
// current minimum; consequently, once a chain reaches a discriminative set,
// no superset in that chain can beat it and the chain stops (the paper's
// test-step pruning). Subtrees whose best-fill upper bound cannot beat the
// incumbent are pruned (the paper's "tight upper bounds").
func (s *selector) greedy() ([]int, float64, error) {
	m := len(s.ids)
	kmax := s.kmax()
	var best []int
	bestVal := math.Inf(-1)

	cur := make([]int, 0, kmax)
	var dfs func(sum float64, start int)
	dfs = func(sum float64, start int) {
		for j := start; j < m; j++ {
			cur = append(cur, j)
			nsum := sum + s.sigs[j]
			if s.discriminative(cur) {
				v := nsum / float64(len(cur))
				if v > bestVal+1e-15 || (math.Abs(v-bestVal) <= 1e-15 && lexLess(cur, best)) {
					bestVal = v
					best = append([]int(nil), cur...)
				}
				cur = cur[:len(cur)-1]
				continue
			}
			if len(cur) < kmax {
				// Upper bound over all supersets in this subtree: fill with
				// the highest-significance remaining landmarks.
				ub := math.Inf(-1)
				fill := nsum
				for t := 1; t <= kmax-len(cur) && j+t < m; t++ {
					fill += s.sigs[j+t]
					if v := fill / float64(len(cur)+t); v > ub {
						ub = v
					}
				}
				if ub > bestVal+1e-15 {
					dfs(nsum, j+1)
				}
			}
			cur = cur[:len(cur)-1]
		}
	}
	dfs(0, 0)
	if best == nil {
		return nil, 0, ErrNoSelection
	}
	return best, bestVal, nil
}

// ils implements Incremental Landmark Selecting: grow candidate sets one
// landmark at a time (S_{k+1} extends only the non-discriminative members of
// S_k, always with lower-significance landmarks to avoid duplicates); each
// discriminative set found this way is *simplest* (no proper subset is
// discriminative, because such a subset would have stopped its own chain
// earlier). Every simplest discriminative set is then completed to every
// target size with the highest-significance unused landmarks (GetMaxSet) and
// the best completion wins.
//
// Note on fidelity: the paper keeps only the single best simplest set per
// size (Lsim[k]). We evaluate the best-fill completion of *every* simplest
// set, which preserves the paper's structure and pruning while making the
// result exactly optimal (equal to BruteForce; see the property tests).
func (s *selector) ils() ([]int, float64, error) {
	m := len(s.ids)
	kmax := s.kmax()
	var best []int
	bestVal := math.Inf(-1)

	consider := func(subset []int) {
		// GetMaxSet for every target size k >= |subset|.
		sum := 0.0
		for _, j := range subset {
			sum += s.sigs[j]
		}
		in := make(map[int]bool, len(subset))
		for _, j := range subset {
			in[j] = true
		}
		fillSum := sum
		fillSet := append([]int(nil), subset...)
		evaluate := func() {
			v := fillSum / float64(len(fillSet))
			sorted := append([]int(nil), fillSet...)
			sort.Ints(sorted)
			if v > bestVal+1e-15 || (math.Abs(v-bestVal) <= 1e-15 && lexLess(sorted, best)) {
				bestVal = v
				best = sorted
			}
		}
		evaluate()
		for j := 0; j < m && len(fillSet) < kmax; j++ {
			if in[j] {
				continue
			}
			fillSet = append(fillSet, j)
			fillSum += s.sigs[j]
			evaluate()
		}
	}

	// Bottom-up enumeration. Sets are represented as index slices in
	// ascending order (== descending significance).
	frontier := make([][]int, 0, m)
	for j := 0; j < m; j++ {
		frontier = append(frontier, []int{j})
	}
	for k := 1; k <= kmax && len(frontier) > 0; k++ {
		var next [][]int
		for _, S := range frontier {
			if s.discriminative(S) {
				consider(S) // simplest discriminative; prune supersets
				continue
			}
			if k == kmax {
				continue
			}
			last := S[len(S)-1]
			for j := last + 1; j < m; j++ {
				ext := make([]int, len(S)+1)
				copy(ext, S)
				ext[len(S)] = j
				next = append(next, ext)
			}
		}
		frontier = next
	}
	if best == nil {
		return nil, 0, ErrNoSelection
	}
	return best, bestVal, nil
}
