package task

import (
	"math"

	"crowdplanner/internal/landmark"
)

// TreeNode is a node of the binary question tree (paper §III-C). Internal
// nodes ask "does the best route pass <Landmark>?"; Yes/No lead to subtrees;
// leaves resolve to a single candidate.
type TreeNode struct {
	Landmark   landmark.ID // question landmark; undefined at leaves
	Sig        float64     // its significance
	Yes, No    *TreeNode
	Candidates []int // candidate indices still possible at this node
}

// IsLeaf reports whether the node resolves to a single candidate.
func (n *TreeNode) IsLeaf() bool { return n.Yes == nil && n.No == nil }

// Leaf returns the resolved candidate index; call only on leaves. When the
// question library cannot split further (defensive case), the first
// remaining candidate is returned.
func (n *TreeNode) Leaf() int { return n.Candidates[0] }

// Depth returns the height of the subtree (0 for a leaf): the worst-case
// number of questions.
func (n *TreeNode) Depth() int {
	if n.IsLeaf() {
		return 0
	}
	dy, dn := 0, 0
	if n.Yes != nil {
		dy = n.Yes.Depth()
	}
	if n.No != nil {
		dn = n.No.Depth()
	}
	if dy > dn {
		return dy + 1
	}
	return dn + 1
}

// entropy computes the weighted empirical entropy (bits) of the candidate
// subset under the given priors.
func entropy(cands []int, priors []float64) float64 {
	var total float64
	for _, i := range cands {
		total += priors[i]
	}
	if total <= 0 {
		return 0
	}
	var h float64
	for _, i := range cands {
		p := priors[i] / total
		if p > 0 {
			h -= p * math.Log2(p)
		}
	}
	return h
}

// buildTree recursively builds the ID3 question tree over the remaining
// candidates using the remaining question landmarks (indices into s.ids).
// Each node picks the question with maximal information strength
// IS(l) = l.s · [H(R) − (W+/W)·H(R+) − (W−/W)·H(R−)] (paper §III-C).
func (s *selector) buildTree(cands []int, questions []int, priors []float64) *TreeNode {
	node := &TreeNode{Candidates: append([]int(nil), cands...)}
	if len(cands) <= 1 || len(questions) == 0 {
		return node
	}

	var totalW float64
	for _, i := range cands {
		totalW += priors[i]
	}
	h := entropy(cands, priors)

	bestQ := -1
	bestIS := math.Inf(-1)
	var bestYes, bestNo []int
	for _, q := range questions {
		var yes, no []int
		var wYes, wNo float64
		for _, i := range cands {
			if s.member[q]>>uint(i)&1 == 1 {
				yes = append(yes, i)
				wYes += priors[i]
			} else {
				no = append(no, i)
				wNo += priors[i]
			}
		}
		if len(yes) == 0 || len(no) == 0 {
			continue // no information for this subset
		}
		gain := h
		if totalW > 0 {
			gain = h - wYes/totalW*entropy(yes, priors) - wNo/totalW*entropy(no, priors)
		}
		is := s.sigs[q] * gain
		// Tie-breaks: higher significance, then lower landmark index, keep
		// the tree deterministic.
		if is > bestIS+1e-12 ||
			(math.Abs(is-bestIS) <= 1e-12 && (bestQ == -1 || s.sigs[q] > s.sigs[bestQ]+1e-12 ||
				(math.Abs(s.sigs[q]-s.sigs[bestQ]) <= 1e-12 && q < bestQ))) {
			bestIS = is
			bestQ = q
			bestYes, bestNo = yes, no
		}
	}
	if bestQ == -1 {
		// No question splits the remaining candidates; they are
		// indistinguishable by the library (possible only if the selection
		// step was skipped). Resolve to the highest-prior candidate.
		best := cands[0]
		for _, i := range cands[1:] {
			if priors[i] > priors[best] {
				best = i
			}
		}
		node.Candidates = []int{best}
		return node
	}

	remaining := make([]int, 0, len(questions)-1)
	for _, q := range questions {
		if q != bestQ {
			remaining = append(remaining, q)
		}
	}
	node.Landmark = s.ids[bestQ]
	node.Sig = s.sigs[bestQ]
	node.Yes = s.buildTree(bestYes, remaining, priors)
	node.No = s.buildTree(bestNo, remaining, priors)
	return node
}

// ExpectedQuestions returns the prior-weighted expected number of questions
// the tree asks before resolving, assuming truthful answers.
func ExpectedQuestions(root *TreeNode, priors []float64) float64 {
	var total float64
	for _, p := range priors {
		total += p
	}
	if total <= 0 || root == nil {
		return 0
	}
	var walk func(n *TreeNode, depth int) float64
	walk = func(n *TreeNode, depth int) float64 {
		if n.IsLeaf() {
			var mass float64
			for _, i := range n.Candidates {
				mass += priors[i]
			}
			return mass / total * float64(depth)
		}
		return walk(n.Yes, depth+1) + walk(n.No, depth+1)
	}
	return walk(root, 0)
}

// StaticOrderQuestions returns the prior-weighted expected number of
// questions when the questions are asked in the given fixed order (no
// adaptivity beyond skipping is allowed): for each candidate, questions are
// issued in order until the answers so far single it out. This models the
// naive "ask everything in a fixed order" baselines of experiment E2.
func (s *selector) staticOrderQuestions(order []int, cands []int, priors []float64) float64 {
	var total float64
	for _, i := range cands {
		total += priors[i]
	}
	if total <= 0 || len(cands) <= 1 {
		return 0
	}
	var expected float64
	for _, truth := range cands {
		alive := append([]int(nil), cands...)
		asked := 0
		for _, q := range order {
			if len(alive) == 1 {
				break
			}
			asked++
			truthAns := s.member[q]>>uint(truth)&1 == 1
			var next []int
			for _, i := range alive {
				if (s.member[q]>>uint(i)&1 == 1) == truthAns {
					next = append(next, i)
				}
			}
			alive = next
		}
		expected += priors[truth] / total * float64(asked)
	}
	return expected
}
