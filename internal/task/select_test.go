package task

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"crowdplanner/internal/calibrate"
	"crowdplanner/internal/geo"
	"crowdplanner/internal/landmark"
)

// mkSet builds a landmark set where landmark i has the given significance.
func mkSet(sigs ...float64) *landmark.Set {
	ls := make([]*landmark.Landmark, len(sigs))
	for i, s := range sigs {
		ls[i] = &landmark.Landmark{
			ID:           landmark.ID(i),
			Pt:           geo.Point{X: float64(i) * 10},
			Significance: s,
		}
	}
	return landmark.NewSet(ls)
}

// mkCand builds a candidate whose landmark-based route is the given IDs.
func mkCand(src string, prior float64, ids ...landmark.ID) Candidate {
	return Candidate{
		Source: src,
		Prior:  prior,
		LRoute: calibrate.LandmarkRoute{Landmarks: ids},
	}
}

func TestSelectorBeneficialLandmarks(t *testing.T) {
	// Paper's example: R1={l1,l2,l3}, R2={l1,l2,l4}. Beneficial = {l3,l4}.
	set := mkSet(0.9, 0.8, 0.7, 0.6)
	cands := []Candidate{
		mkCand("a", 0, 0, 1, 2),
		mkCand("b", 0, 0, 1, 3),
	}
	sel, err := newSelector(set, cands)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.ids) != 2 {
		t.Fatalf("beneficial = %v, want {2,3}", sel.ids)
	}
	// Sorted by significance descending: l2 (0.7) then l3 (0.6).
	if sel.ids[0] != 2 || sel.ids[1] != 3 {
		t.Errorf("order = %v", sel.ids)
	}
}

func TestSelectorDiscriminative(t *testing.T) {
	set := mkSet(0.9, 0.8, 0.7, 0.6)
	cands := []Candidate{
		mkCand("a", 0, 0, 1, 2),
		mkCand("b", 0, 0, 1, 3),
	}
	sel, err := newSelector(set, cands)
	if err != nil {
		t.Fatal(err)
	}
	// Both singletons are discriminative (paper: L3={l3}, L4={l4} are
	// simplest discriminative).
	if !sel.discriminative([]int{0}) || !sel.discriminative([]int{1}) {
		t.Error("singletons should be discriminative")
	}
	if !sel.discriminative([]int{0, 1}) {
		t.Error("pair should be discriminative")
	}
	if sel.discriminative(nil) {
		t.Error("empty set should not be discriminative for 2 candidates")
	}
}

func TestSelectorErrors(t *testing.T) {
	set := mkSet(0.5)
	if _, err := newSelector(set, nil); !errors.Is(err, ErrNoCandidates) {
		t.Errorf("err = %v", err)
	}
	// Indistinguishable candidates.
	cands := []Candidate{
		mkCand("a", 0, 0),
		mkCand("b", 0, 0),
	}
	if _, err := newSelector(set, cands); !errors.Is(err, ErrNotDiscriminable) {
		t.Errorf("err = %v", err)
	}
	// 65 candidates.
	many := make([]Candidate, 65)
	if _, err := newSelector(set, many); !errors.Is(err, ErrTooManyCandidates) {
		t.Errorf("err = %v", err)
	}
}

func TestBruteForceKnownOptimum(t *testing.T) {
	// Landmarks: l0 sig .9 on A only; l1 sig .5 on B only; l2 sig .1 on C
	// only. Candidates A={l0}, B={l1}, C={l2}.
	// Any single landmark leaves two candidates identical (both "not on"),
	// so pairs are the simplest discriminative sets. Best: {l0,l1} mean .7.
	set := mkSet(0.9, 0.5, 0.1)
	cands := []Candidate{
		mkCand("A", 0, 0),
		mkCand("B", 0, 1),
		mkCand("C", 0, 2),
	}
	sel, err := newSelector(set, cands)
	if err != nil {
		t.Fatal(err)
	}
	subset, val, err := sel.bruteForce()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(val-0.7) > 1e-9 {
		t.Errorf("value = %v, want 0.7", val)
	}
	ids := sel.selectedIDs(subset)
	if len(ids) != 2 || ids[0] != 0 || ids[1] != 1 {
		t.Errorf("selected = %v, want [0 1]", ids)
	}
}

func TestSelectionFillBeatsSimplest(t *testing.T) {
	// The case where the optimum is a simplest set plus a high-significance
	// filler: l0 (sig .9) is useless alone but lifts the mean of {l1}.
	// Candidates: A={l0,l1}, B={l0}. Beneficial = {l1} only... make l0
	// asymmetric: A={l0,l1}, B={l0,l2}.
	// Beneficial: l1 (sig .5), l2 (sig .4). Simplest: {l1}, {l2}.
	// Values: {l1}=.5, {l2}=.4, {l1,l2}=.45. Optimum {l1} = .5.
	set := mkSet(0.9, 0.5, 0.4)
	cands := []Candidate{
		mkCand("A", 0, 0, 1),
		mkCand("B", 0, 0, 2),
	}
	sel, err := newSelector(set, cands)
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []Algorithm{BruteForce, ILS, Greedy} {
		subset, val, err := sel.selectLandmarks(algo)
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if math.Abs(val-0.5) > 1e-9 {
			t.Errorf("%v: value = %v, want 0.5 (subset %v)", algo, val, sel.selectedIDs(subset))
		}
	}
}

func TestSelectionRespectsSizeBound(t *testing.T) {
	// n=2 candidates: |L| must be <= 2 even if more landmarks would raise
	// the mean... (mean can't grow by adding, but verify the bound anyway
	// on a 4-candidate instance).
	set := mkSet(0.9, 0.8, 0.7, 0.6, 0.5, 0.4)
	cands := []Candidate{
		mkCand("A", 0, 0, 1),
		mkCand("B", 0, 1, 2),
		mkCand("C", 0, 2, 3),
		mkCand("D", 0, 3, 4),
	}
	sel, err := newSelector(set, cands)
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []Algorithm{BruteForce, ILS, Greedy} {
		subset, _, err := sel.selectLandmarks(algo)
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if len(subset) > 4 {
			t.Errorf("%v: |L| = %d exceeds n = 4", algo, len(subset))
		}
		if len(subset) < 2 { // ceil(log2 4) = 2
			t.Errorf("%v: |L| = %d below information bound", algo, len(subset))
		}
		if !sel.discriminative(subset) {
			t.Errorf("%v: selection not discriminative", algo)
		}
	}
}

// randomInstance builds a random selector instance from a seed: n candidates
// over m landmarks with random membership and significances, retrying until
// candidates are pairwise distinguishable.
func randomInstance(seed int64) (*selector, bool) {
	rng := rand.New(rand.NewSource(seed))
	n := 2 + rng.Intn(5)  // 2..6 candidates
	m := 3 + rng.Intn(10) // 3..12 landmarks
	sigs := make([]float64, m)
	for i := range sigs {
		sigs[i] = rng.Float64()
	}
	set := mkSet(sigs...)
	for attempt := 0; attempt < 20; attempt++ {
		cands := make([]Candidate, n)
		for i := range cands {
			var ids []landmark.ID
			for j := 0; j < m; j++ {
				if rng.Intn(2) == 1 {
					ids = append(ids, landmark.ID(j))
				}
			}
			cands[i] = mkCand("x", rng.Float64(), ids...)
		}
		sel, err := newSelector(set, cands)
		if err == nil {
			return sel, true
		}
	}
	return nil, false
}

func TestPropertyAllAlgorithmsAgree(t *testing.T) {
	f := func(seed int64) bool {
		sel, ok := randomInstance(seed)
		if !ok {
			return true // skip degenerate draws
		}
		bf, bfVal, err1 := sel.bruteForce()
		il, ilVal, err2 := sel.ils()
		gr, grVal, err3 := sel.greedy()
		if (err1 != nil) != (err2 != nil) || (err1 != nil) != (err3 != nil) {
			t.Logf("seed %d: err mismatch %v/%v/%v", seed, err1, err2, err3)
			return false
		}
		if err1 != nil {
			return true
		}
		if math.Abs(bfVal-ilVal) > 1e-9 || math.Abs(bfVal-grVal) > 1e-9 {
			t.Logf("seed %d: values bf=%v ils=%v greedy=%v (bf=%v ils=%v gr=%v)",
				seed, bfVal, ilVal, grVal, bf, il, gr)
			return false
		}
		// All results must be discriminative and within size bounds.
		for _, sub := range [][]int{bf, il, gr} {
			if !sel.discriminative(sub) || len(sub) > sel.kmax() {
				t.Logf("seed %d: invalid subset %v", seed, sub)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 150}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPropertySelectionIsSubsetOptimalValue(t *testing.T) {
	// The objective value must dominate the value of every simplest
	// discriminative singleton/pair found by scanning (a weaker independent
	// oracle than brute force).
	f := func(seed int64) bool {
		sel, ok := randomInstance(seed)
		if !ok {
			return true
		}
		_, val, err := sel.greedy()
		if err != nil {
			return true
		}
		m := len(sel.ids)
		for i := 0; i < m; i++ {
			if sel.discriminative([]int{i}) && sel.value([]int{i}) > val+1e-9 {
				return false
			}
			for j := i + 1; j < m; j++ {
				sub := []int{i, j}
				if sel.discriminative(sub) && sel.value(sub) > val+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSingleCandidateNeedsNoQuestions(t *testing.T) {
	set := mkSet(0.9)
	cands := []Candidate{mkCand("only", 0, 0)}
	sel, err := newSelector(set, cands)
	if err != nil {
		t.Fatal(err)
	}
	subset, val, err := sel.selectLandmarks(Greedy)
	if err != nil || len(subset) != 0 || val != 0 {
		t.Errorf("single candidate: %v %v %v", subset, val, err)
	}
}

func TestBruteForceTooLarge(t *testing.T) {
	sigs := make([]float64, 40)
	var idsA, idsB []landmark.ID
	for i := range sigs {
		sigs[i] = float64(i) / 40
		if i%2 == 0 {
			idsA = append(idsA, landmark.ID(i))
		} else {
			idsB = append(idsB, landmark.ID(i))
		}
	}
	set := mkSet(sigs...)
	cands := []Candidate{mkCand("A", 0, idsA...), mkCand("B", 0, idsB...)}
	sel, err := newSelector(set, cands)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sel.bruteForce(); !errors.Is(err, errTooLarge) {
		t.Errorf("err = %v, want errTooLarge", err)
	}
	// Greedy still works.
	if _, _, err := sel.greedy(); err != nil {
		t.Errorf("greedy on wide instance: %v", err)
	}
}

func TestMergeIndistinguishable(t *testing.T) {
	cands := []Candidate{
		mkCand("a", 0.5, 1, 2),
		mkCand("b", 0.3, 2, 1), // same landmark set, different order
		mkCand("c", 0.2, 3),
	}
	merged := MergeIndistinguishable(cands)
	if len(merged) != 2 {
		t.Fatalf("merged = %d candidates", len(merged))
	}
	if merged[0].Source != "a" {
		t.Errorf("survivor = %q, want higher-prior 'a'", merged[0].Source)
	}
	if math.Abs(merged[0].Prior-0.8) > 1e-9 {
		t.Errorf("merged prior = %v, want 0.8", merged[0].Prior)
	}
	if merged[1].Source != "c" {
		t.Errorf("second = %q", merged[1].Source)
	}
	// No-op when all distinct.
	same := MergeIndistinguishable(merged)
	if len(same) != 2 {
		t.Error("idempotent merge failed")
	}
}

func TestAlgorithmString(t *testing.T) {
	if BruteForce.String() != "BruteForce" || ILS.String() != "ILS" ||
		Greedy.String() != "Greedy" || Algorithm(9).String() != "Algorithm(?)" {
		t.Error("Algorithm.String mismatch")
	}
}
