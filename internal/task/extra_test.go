package task

import (
	"math"
	"testing"

	"crowdplanner/internal/landmark"
)

func TestSelectOnlyAndBeneficialCount(t *testing.T) {
	set := mkSet(0.9, 0.5, 0.1)
	cands := []Candidate{
		mkCand("A", 0, 0),
		mkCand("B", 0, 1),
		mkCand("C", 0, 2),
	}
	n, err := BeneficialCount(set, cands)
	if err != nil || n != 3 {
		t.Fatalf("BeneficialCount = %d, %v", n, err)
	}
	for _, algo := range []Algorithm{BruteForce, ILS, Greedy, Algorithm(99)} {
		ids, val, err := SelectOnly(set, cands, algo)
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if math.Abs(val-0.7) > 1e-9 {
			t.Errorf("%v: value = %v, want 0.7", algo, val)
		}
		if len(ids) != 2 {
			t.Errorf("%v: ids = %v", algo, ids)
		}
	}
	// Error propagation.
	if _, _, err := SelectOnly(set, nil, Greedy); err == nil {
		t.Error("empty candidates should error")
	}
	if _, err := BeneficialCount(set, nil); err == nil {
		t.Error("empty candidates should error")
	}
}

func TestExpectedQuestionsStaticOnTask(t *testing.T) {
	set, cands := fourCands()
	tk, err := Generate(1, set, cands, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	q := len(tk.Questions)
	order := make([]int, q)
	for i := range order {
		order[i] = i
	}
	static := tk.ExpectedQuestionsStatic(order)
	if static <= 0 || static > float64(q)+1e-9 {
		t.Errorf("static = %v with %d questions", static, q)
	}
	// The adaptive tree never asks more than the static order in
	// expectation.
	if tk.ExpectedQuestions() > static+1e-9 {
		t.Errorf("ID3 %v should be <= static %v", tk.ExpectedQuestions(), static)
	}
	// A task with no retained selector returns 0 defensively.
	empty := &Task{}
	if empty.ExpectedQuestionsStatic(nil) != 0 {
		t.Error("selector-less task should report 0")
	}
	if empty.MaxQuestions() != 0 {
		t.Error("tree-less task should report 0 max questions")
	}
}

func TestDiscriminativeWidePath(t *testing.T) {
	// More than 64 beneficial landmarks forces the pairwise fallback in the
	// full-set discriminability check inside newSelector.
	const m = 80
	sigs := make([]float64, m)
	var idsA, idsB []landmark.ID
	for i := 0; i < m; i++ {
		sigs[i] = float64(i) / m
		if i%2 == 0 {
			idsA = append(idsA, landmark.ID(i))
		} else {
			idsB = append(idsB, landmark.ID(i))
		}
	}
	set := mkSet(sigs...)
	cands := []Candidate{mkCand("A", 0, idsA...), mkCand("B", 0, idsB...)}
	sel, err := newSelector(set, cands)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.ids) != m {
		t.Fatalf("beneficial = %d", len(sel.ids))
	}
	if !sel.discriminative(allIndices(m)) {
		t.Error("wide full set should be discriminative")
	}
	// And the wide pairwise path must also detect indistinguishability.
	dup := []Candidate{mkCand("A", 0, idsA...), mkCand("B", 0, idsA...)}
	if _, err := newSelector(set, dup); err == nil {
		t.Error("identical wide candidates should fail")
	}
	// Greedy still solves the wide instance.
	subset, _, err := sel.greedy()
	if err != nil || !sel.discriminative(subset) {
		t.Errorf("greedy on wide instance: %v %v", subset, err)
	}
}

func TestSelectionWithTiedSignificances(t *testing.T) {
	// Adversarial ties: every landmark has the same significance, so the
	// objective is flat and only the discriminative structure matters. All
	// algorithms must agree and pick a smallest discriminative set.
	set := mkSet(0.5, 0.5, 0.5, 0.5, 0.5)
	cands := []Candidate{
		mkCand("A", 0, 0, 1),
		mkCand("B", 0, 1, 2),
		mkCand("C", 0, 2, 3),
		mkCand("D", 0, 3, 4),
	}
	sel, err := newSelector(set, cands)
	if err != nil {
		t.Fatal(err)
	}
	bf, bfVal, err1 := sel.bruteForce()
	il, ilVal, err2 := sel.ils()
	gr, grVal, err3 := sel.greedy()
	if err1 != nil || err2 != nil || err3 != nil {
		t.Fatal(err1, err2, err3)
	}
	if math.Abs(bfVal-0.5) > 1e-9 || math.Abs(ilVal-0.5) > 1e-9 || math.Abs(grVal-0.5) > 1e-9 {
		t.Errorf("tied values = %v %v %v, want 0.5", bfVal, ilVal, grVal)
	}
	// With a flat objective, deterministic tie-breaks must make all three
	// pick the same set.
	if len(bf) != len(il) || len(bf) != len(gr) {
		t.Errorf("sizes differ: %v %v %v", bf, il, gr)
	}
}

func TestLexLess(t *testing.T) {
	if !lexLess([]int{1, 2}, nil) {
		t.Error("anything beats nil")
	}
	if !lexLess([]int{1, 2}, []int{1, 3}) {
		t.Error("[1,2] < [1,3]")
	}
	if lexLess([]int{2}, []int{1, 9}) {
		t.Error("[2] > [1,9]")
	}
	if !lexLess([]int{1}, []int{1, 0}) {
		t.Error("prefix is smaller")
	}
	if lexLess([]int{1, 2}, []int{1, 2}) {
		t.Error("equal is not less")
	}
}

func TestResolveOnLeaflessPath(t *testing.T) {
	// Resolve with an answer function on a single-candidate task: the tree
	// is a lone leaf and Resolve returns 0 immediately.
	set := mkSet(0.9)
	tk, err := Generate(1, set, []Candidate{mkCand("only", 0, 0)}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := tk.Resolve(func(landmark.ID) bool { return true }); got != 0 {
		t.Errorf("Resolve = %d", got)
	}
}
