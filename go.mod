module crowdplanner

go 1.24
