// Command cpserver builds a synthetic scenario and serves the CrowdPlanner
// HTTP API on it.
//
// Usage:
//
//	cpserver -addr :8080 -size small -data-dir ./cpdata
//
// Then:
//
//	curl -s localhost:8080/v1/health
//	curl -s -X POST localhost:8080/v1/recommend \
//	     -d '{"from":3,"to":317,"depart_min":510}'
//
// With -data-dir the mutable state (verified truths, worker rewards and
// histories, open crowd tasks) persists in a snapshot + write-ahead log:
// state is replayed on boot, every commit is WAL-logged as it happens (so
// even a kill -9 loses nothing durable), and a full snapshot is written on
// graceful shutdown, compacting the log. POST /v1/admin/snapshot checkpoints
// on demand.
//
// The server drains gracefully on SIGINT/SIGTERM: in-flight requests get
// -grace to finish (their contexts are cancelled at the deadline, which the
// serving core observes), then the listener closes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"crowdplanner/internal/core"
	"crowdplanner/internal/server"
	"crowdplanner/internal/store/diskstore"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		size    = flag.String("size", "default", "scenario size: small or default")
		grace   = flag.Duration("grace", 10*time.Second, "shutdown grace period for in-flight requests")
		dataDir = flag.String("data-dir", "", "directory for durable state (snapshot + WAL); empty keeps state in memory only")
		noSync  = flag.Bool("no-fsync", false, "skip the fsync after each WAL append (faster, loses the last commits on power failure)")

		readTimeout  = flag.Duration("read-timeout", 30*time.Second, "HTTP server read timeout (full request)")
		writeTimeout = flag.Duration("write-timeout", 60*time.Second, "HTTP server write timeout (full response)")
		idleTimeout  = flag.Duration("idle-timeout", 90*time.Second, "HTTP keep-alive idle timeout")
		reqTimeout   = flag.Duration("request-timeout", 0, "per-request deadline budget propagated to the serving core (0 disables)")

		maxConcurrent = flag.Int("max-concurrent", 0, "cap on requests in service at once; beyond it requests queue, then shed with 429 (0 disables admission control)")
		maxQueue      = flag.Int("max-queue", 64, "bounded waiting room beyond -max-concurrent before shedding")
		rateLimit     = flag.Float64("rate-limit", 0, "per-client token-bucket rate in req/s, keyed by X-API-Key or remote address (0 disables)")
		rateBurst     = flag.Float64("rate-burst", 0, "token-bucket capacity (0 derives 2x -rate-limit)")
	)
	flag.Parse()

	// Fail fast on nonsense serving limits rather than booting a server
	// whose protection layer silently cannot work.
	for name, d := range map[string]time.Duration{
		"-read-timeout": *readTimeout, "-write-timeout": *writeTimeout, "-idle-timeout": *idleTimeout,
	} {
		if d <= 0 {
			log.Fatalf("%s must be positive, got %v", name, d)
		}
	}
	if *reqTimeout < 0 {
		log.Fatalf("-request-timeout must be >= 0, got %v", *reqTimeout)
	}
	if *reqTimeout > 0 && *reqTimeout >= *writeTimeout {
		log.Fatalf("-request-timeout (%v) must be below -write-timeout (%v), or the connection dies before the 504 can be written", *reqTimeout, *writeTimeout)
	}
	if *maxConcurrent < 0 || *maxQueue < 0 {
		log.Fatalf("-max-concurrent and -max-queue must be >= 0")
	}
	if *rateLimit < 0 || *rateBurst < 0 {
		log.Fatalf("-rate-limit and -rate-burst must be >= 0")
	}

	cfg := core.DefaultScenarioConfig()
	if *size == "small" {
		cfg = core.SmallScenarioConfig()
	}

	var ds *diskstore.Store
	if *dataDir != "" {
		var opts []diskstore.Option
		if *noSync {
			opts = append(opts, diskstore.WithoutSync())
		}
		var err error
		if ds, err = diskstore.Open(*dataDir, opts...); err != nil {
			log.Fatal(err)
		}
		cfg.System.Store = ds
	}

	log.Printf("building %s scenario...", *size)
	scn := core.BuildScenario(cfg)
	log.Printf("city: %d nodes, %d edges; %d landmarks; %d trips; %d workers",
		scn.Graph.NumNodes(), scn.Graph.NumEdges(),
		scn.Landmarks.Len(), len(scn.Data.Trips), scn.Pool.Len())

	if ds != nil {
		stats, err := scn.System.LoadFromStore(context.Background())
		if err != nil {
			log.Fatalf("restoring %s: %v", *dataDir, err)
		}
		msg := ""
		if stats.Truncated {
			msg = " (torn WAL tail recovered)"
		}
		// TruthDB().Len(), not stats.LoadedTruths: the latter counts raw log
		// records, including ones superseded by later commits to the same key.
		log.Printf("restored from %s: %d truths, %d workers, %d open tasks, %d ingested trips%s",
			*dataDir, scn.System.TruthDB().Len(), stats.LoadedWorkers, stats.LoadedTasks, stats.LoadedTrips, msg)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	opts := []server.Option{server.WithLogger(log.Default())}
	if *maxConcurrent > 0 || *rateLimit > 0 || *reqTimeout > 0 {
		opts = append(opts, server.WithOverload(server.OverloadConfig{
			MaxConcurrent:  *maxConcurrent,
			MaxQueue:       *maxQueue,
			RatePerSec:     *rateLimit,
			Burst:          *rateBurst,
			RequestTimeout: *reqTimeout,
		}))
		log.Printf("overload protection: max-concurrent=%d max-queue=%d rate-limit=%g/s request-timeout=%v",
			*maxConcurrent, *maxQueue, *rateLimit, *reqTimeout)
	}
	srv := &http.Server{
		Addr:    *addr,
		Handler: server.New(scn.System, opts...).Handler(),
		// Slow-loris protection: a connection that won't finish its headers
		// or drain its response can't pin a goroutine forever.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
	}
	log.Printf("serving CrowdPlanner API on %s", *addr)
	fmt.Printf("try: curl -s -X POST localhost%s/v1/recommend -d '{\"from\":%d,\"to\":%d,\"depart_min\":510}'\n",
		*addr, scn.Data.Trips[0].Route.Source(), scn.Data.Trips[0].Route.Dest())

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
		stop() // a second signal kills immediately
		log.Printf("signal received; draining for up to %s...", *grace)
		sctx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			log.Printf("shutdown: %v", err)
			_ = srv.Close()
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("serve: %v", err)
		}
		if ds != nil {
			// Checkpoint the drained state and compact the WAL, so the next
			// boot replays one snapshot instead of the whole log.
			if stats, err := scn.System.Snapshot(); err != nil {
				log.Printf("final snapshot: %v (WAL still holds every commit)", err)
			} else {
				log.Printf("snapshot written: %d truths, %d snapshots total", scn.System.TruthDB().Len(), stats.Snapshots)
			}
			if err := ds.Close(); err != nil {
				log.Printf("closing store: %v", err)
			}
		}
		log.Printf("bye")
	}
}
