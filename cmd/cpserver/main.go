// Command cpserver builds a synthetic scenario and serves the CrowdPlanner
// HTTP API on it.
//
// Usage:
//
//	cpserver -addr :8080 -size small
//
// Then:
//
//	curl -s localhost:8080/api/health
//	curl -s -X POST localhost:8080/api/recommend \
//	     -d '{"from":3,"to":317,"depart_min":510}'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"

	"crowdplanner/internal/core"
	"crowdplanner/internal/server"
)

func main() {
	var (
		addr = flag.String("addr", ":8080", "listen address")
		size = flag.String("size", "default", "scenario size: small or default")
	)
	flag.Parse()

	cfg := core.DefaultScenarioConfig()
	if *size == "small" {
		cfg = core.SmallScenarioConfig()
	}
	log.Printf("building %s scenario...", *size)
	scn := core.BuildScenario(cfg)
	log.Printf("city: %d nodes, %d edges; %d landmarks; %d trips; %d workers",
		scn.Graph.NumNodes(), scn.Graph.NumEdges(),
		scn.Landmarks.Len(), len(scn.Data.Trips), scn.Pool.Len())

	srv := server.New(scn.System)
	log.Printf("serving CrowdPlanner API on %s", *addr)
	fmt.Printf("try: curl -s -X POST localhost%s/api/recommend -d '{\"from\":%d,\"to\":%d,\"depart_min\":510}'\n",
		*addr, scn.Data.Trips[0].Route.Source(), scn.Data.Trips[0].Route.Dest())
	log.Fatal(http.ListenAndServe(*addr, srv.Handler()))
}
