// Command cpserver builds a synthetic scenario and serves the CrowdPlanner
// HTTP API on it.
//
// Usage:
//
//	cpserver -addr :8080 -size small
//
// Then:
//
//	curl -s localhost:8080/v1/health
//	curl -s -X POST localhost:8080/v1/recommend \
//	     -d '{"from":3,"to":317,"depart_min":510}'
//
// The server drains gracefully on SIGINT/SIGTERM: in-flight requests get
// -grace to finish (their contexts are cancelled at the deadline, which the
// serving core observes), then the listener closes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"crowdplanner/internal/core"
	"crowdplanner/internal/server"
)

func main() {
	var (
		addr  = flag.String("addr", ":8080", "listen address")
		size  = flag.String("size", "default", "scenario size: small or default")
		grace = flag.Duration("grace", 10*time.Second, "shutdown grace period for in-flight requests")
	)
	flag.Parse()

	cfg := core.DefaultScenarioConfig()
	if *size == "small" {
		cfg = core.SmallScenarioConfig()
	}
	log.Printf("building %s scenario...", *size)
	scn := core.BuildScenario(cfg)
	log.Printf("city: %d nodes, %d edges; %d landmarks; %d trips; %d workers",
		scn.Graph.NumNodes(), scn.Graph.NumEdges(),
		scn.Landmarks.Len(), len(scn.Data.Trips), scn.Pool.Len())

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	srv := &http.Server{
		Addr:    *addr,
		Handler: server.New(scn.System, server.WithLogger(log.Default())).Handler(),
		// Slow-loris protection: a connection that won't finish its headers
		// or drain its response can't pin a goroutine forever.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       90 * time.Second,
	}
	log.Printf("serving CrowdPlanner API on %s", *addr)
	fmt.Printf("try: curl -s -X POST localhost%s/v1/recommend -d '{\"from\":%d,\"to\":%d,\"depart_min\":510}'\n",
		*addr, scn.Data.Trips[0].Route.Source(), scn.Data.Trips[0].Route.Dest())

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
		stop() // a second signal kills immediately
		log.Printf("signal received; draining for up to %s...", *grace)
		sctx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			log.Printf("shutdown: %v", err)
			_ = srv.Close()
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("serve: %v", err)
		}
		log.Printf("bye")
	}
}
