// Command cpbench regenerates the tables and figures of the reconstructed
// evaluation (DESIGN.md §4, EXPERIMENTS.md), and doubles as a serving-path
// throughput harness.
//
// Usage:
//
//	cpbench -exp all            # every experiment at full scale
//	cpbench -exp E1,E4 -scale 0.5
//	cpbench -list
//	cpbench -parallel 8         # throughput mode: hammer Recommend from 8 goroutines
//	cpbench -parallel 1 -requests 5000 -cold
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"crowdplanner/internal/core"
	"crowdplanner/internal/experiments"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "comma-separated experiment IDs (E1..E10, A1, A2) or 'all'")
		scale    = flag.Float64("scale", 1.0, "workload scale factor (1 = EXPERIMENTS.md scale)")
		list     = flag.Bool("list", false, "list available experiments and exit")
		parallel = flag.Int("parallel", 0, "throughput mode: serve Recommend from N goroutines instead of running experiments")
		requests = flag.Int("requests", 4000, "throughput mode: total requests to issue")
		cold     = flag.Bool("cold", false, "throughput mode: disable truth reuse (full evaluation every request)")
		nocache  = flag.Bool("nocache", false, "throughput mode: disable the route cache as well")
	)
	flag.Parse()

	if *list {
		for _, s := range experiments.Registry() {
			fmt.Printf("%-4s %s\n", s.ID, s.Title)
		}
		return
	}
	if *parallel > 0 {
		if err := runThroughput(*parallel, *requests, *cold, *nocache); err != nil {
			fmt.Fprintln(os.Stderr, "cpbench:", err)
			os.Exit(1)
		}
		return
	}
	var ids []string
	if *exp != "all" && *exp != "" {
		for _, id := range strings.Split(*exp, ",") {
			if id = strings.TrimSpace(id); id != "" {
				ids = append(ids, id)
			}
		}
	}
	if err := experiments.RunAll(os.Stdout, ids, *scale); err != nil {
		fmt.Fprintln(os.Stderr, "cpbench:", err)
		os.Exit(1)
	}
}

// runThroughput measures end-to-end Recommend throughput over the standard
// small scenario: `requests` trip-derived requests spread across `workers`
// goroutines. With -cold, truth reuse is disabled so every request runs the
// full evaluation (the route cache then absorbs the repeat graph searches;
// add -nocache to measure the uncached pipeline). Otherwise the run reports
// the steady-state (truth reuse) serving rate.
func runThroughput(workers, requests int, cold, nocache bool) error {
	cfg := core.SmallScenarioConfig()
	if cold {
		cfg.System.ReuseTruth = false
	}
	if nocache {
		cfg.System.RouteCacheCapacity = 0
	}
	fmt.Printf("building scenario (%dx%d city, %d workers)...\n",
		cfg.City.Cols, cfg.City.Rows, cfg.Workers.NumWorkers)
	scn := core.BuildScenario(cfg)

	var reqs []core.Request
	for _, tr := range scn.Data.Trips {
		if tr.Route.Empty() {
			continue
		}
		reqs = append(reqs, core.Request{
			From: tr.Route.Source(), To: tr.Route.Dest(), Depart: tr.Depart,
		})
	}
	if len(reqs) == 0 {
		return fmt.Errorf("scenario produced no usable trips")
	}

	var (
		next   atomic.Int64
		errs   atomic.Int64
		stages [5]atomic.Int64
		wg     sync.WaitGroup
	)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(requests) {
					return
				}
				resp, err := scn.System.Recommend(context.Background(), reqs[i%int64(len(reqs))])
				if err != nil {
					errs.Add(1)
					continue
				}
				if st := int(resp.Stage); st >= 0 && st < len(stages) {
					stages[st].Add(1)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	mode := "warm"
	if cold {
		mode = "cold"
	}
	fmt.Printf("\n== throughput (%s, parallel=%d) ==\n", mode, workers)
	fmt.Printf("  requests   %d (%d errors)\n", requests, errs.Load())
	fmt.Printf("  elapsed    %v\n", elapsed.Round(time.Millisecond))
	fmt.Printf("  rate       %.0f req/s\n", float64(requests)/elapsed.Seconds())
	for st := range stages {
		if n := stages[st].Load(); n > 0 {
			fmt.Printf("  stage %-10s %d\n", core.Stage(st), n)
		}
	}
	cs := scn.System.RouteCacheStats()
	fmt.Printf("  route cache  hits=%d misses=%d (%.0f%% hit) size=%d/%d evictions=%d invalidations=%d\n",
		cs.Hits, cs.Misses, 100*cs.HitRate(), cs.Size, cs.Capacity, cs.Evictions, cs.Invalidations)
	fmt.Printf("  truths       %d\n", scn.System.TruthDB().Len())
	return nil
}
