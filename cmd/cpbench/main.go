// Command cpbench regenerates the tables and figures of the reconstructed
// evaluation (DESIGN.md §4, EXPERIMENTS.md), and doubles as a serving-path
// throughput harness.
//
// Usage:
//
//	cpbench -exp all            # every experiment at full scale
//	cpbench -exp E1,E4 -scale 0.5
//	cpbench -list
//	cpbench -parallel 8         # throughput mode: hammer Recommend from 8 goroutines
//	cpbench -parallel 1 -requests 5000 -cold
//	cpbench -ingest 100000 -ingest-batch 500  # trajectory-ingestion throughput
//	cpbench -routing 5000 -routing-grid 16    # routing-engine mode: Dijkstra/A*/k-shortest
//	cpbench -exp E1 -json BENCH_e1.json       # machine-readable results
//	cpbench -parallel 8 -json BENCH_tput.json
//
// With -json, one result per experiment (or one for the throughput run) is
// written as a JSON array of {name, runs, ns_per_op, allocs_per_op, extra},
// so successive runs accumulate a comparable perf trajectory (BENCH_*.json).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"crowdplanner/internal/core"
	"crowdplanner/internal/experiments"
	"crowdplanner/internal/roadnet"
	"crowdplanner/internal/routing"
	"crowdplanner/internal/traj"
)

// BenchResult is one machine-readable benchmark measurement, mirroring the
// fields of testing.B output that matter for trend tracking.
type BenchResult struct {
	Name        string             `json:"name"`
	Runs        int                `json:"runs"`
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

func main() {
	var (
		exp         = flag.String("exp", "all", "comma-separated experiment IDs (E1..E10, A1, A2) or 'all'")
		scale       = flag.Float64("scale", 1.0, "workload scale factor (1 = EXPERIMENTS.md scale)")
		list        = flag.Bool("list", false, "list available experiments and exit")
		parallel    = flag.Int("parallel", 0, "throughput mode: serve Recommend from N goroutines instead of running experiments")
		requests    = flag.Int("requests", 4000, "throughput mode: total requests to issue")
		cold        = flag.Bool("cold", false, "throughput mode: disable truth reuse (full evaluation every request)")
		nocache     = flag.Bool("nocache", false, "throughput mode: disable the route cache as well")
		ingest      = flag.Int("ingest", 0, "ingestion mode: stream N synthetic trips through System.IngestTrips and report trips/sec")
		ingestBatch = flag.Int("ingest-batch", 100, "ingestion mode: trips per IngestTrips batch")
		routingN    = flag.Int("routing", 0, "routing mode: run N random-OD queries each through Dijkstra, A* and k-shortest")
		routingGrid = flag.String("routing-grid", "16", "routing mode: comma-separated city grid sizes (cols = rows), e.g. 16,64,256")
		routingK    = flag.Int("routing-k", 4, "routing mode: k for the k-shortest sweep")
		routingPrep = flag.Bool("routing-prep", true, "routing mode: also benchmark the ALT landmark preprocessing tier")
		jsonOut     = flag.String("json", "", "write machine-readable results (name, ns/op, allocs) to this file")
	)
	flag.Parse()

	if *list {
		for _, s := range experiments.Registry() {
			fmt.Printf("%-4s %s\n", s.ID, s.Title)
		}
		return
	}
	var results []BenchResult
	if *routingN > 0 {
		grids, err := parseGrids(*routingGrid)
		if err != nil {
			fatal(err)
		}
		for _, grid := range grids {
			res, err := runRouting(*routingN, grid, *routingK, *routingPrep)
			if err != nil {
				fatal(err)
			}
			results = append(results, res...)
		}
	} else if *ingest > 0 {
		res, err := runIngest(*ingest, *ingestBatch)
		if err != nil {
			fatal(err)
		}
		results = append(results, res)
	} else if *parallel > 0 {
		res, err := runThroughput(*parallel, *requests, *cold, *nocache)
		if err != nil {
			fatal(err)
		}
		results = append(results, res)
	} else {
		var ids []string
		if *exp != "all" && *exp != "" {
			for _, id := range strings.Split(*exp, ",") {
				if id = strings.TrimSpace(id); id != "" {
					ids = append(ids, id)
				}
			}
		}
		selected, err := experiments.Select(ids)
		if err != nil {
			fatal(err)
		}
		for _, s := range selected {
			fmt.Printf("# %s — %s\n", s.ID, s.Title)
			// Only the experiment runs inside the timed region; table
			// formatting and terminal writes would otherwise pollute the
			// ns_per_op trend data.
			var tables []*experiments.Table
			res := measure("exp/"+s.ID, 1, func() {
				tables = s.Run(*scale)
			})
			for _, tbl := range tables {
				tbl.Fprint(os.Stdout)
			}
			res.Extra = map[string]float64{"scale": *scale}
			results = append(results, res)
		}
	}
	if *jsonOut != "" {
		if err := writeResults(*jsonOut, results); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d result(s) to %s\n", len(results), *jsonOut)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cpbench:", err)
	os.Exit(1)
}

// measure times ops executions of f and attributes allocations to it.
func measure(name string, ops int, f func()) BenchResult {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	f()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	if ops < 1 {
		ops = 1
	}
	return BenchResult{
		Name:        name,
		Runs:        ops,
		NsPerOp:     float64(elapsed.Nanoseconds()) / float64(ops),
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / float64(ops),
	}
}

func writeResults(path string, results []BenchResult) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// parseGrids parses the -routing-grid comma list ("16,64,256") into grid
// sizes, each at least 2.
func parseGrids(s string) ([]int, error) {
	var grids []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		var grid int
		if _, err := fmt.Sscanf(part, "%d", &grid); err != nil {
			return nil, fmt.Errorf("bad -routing-grid entry %q: %w", part, err)
		}
		if grid < 2 {
			grid = 2
		}
		grids = append(grids, grid)
	}
	if len(grids) == 0 {
		return nil, fmt.Errorf("-routing-grid lists no sizes")
	}
	return grids, nil
}

// routingBatchTargets is the fan-out of the batched one-to-many benchmark:
// one op = one search settling this many targets.
const routingBatchTargets = 16

// runRouting measures the routing engine in isolation at one city scale:
// `queries` random OD pairs on a grid×grid generated city, swept through
// plain Dijkstra, goal-directed A*, the ALT landmark tier, the batched
// one-to-many API (all under the time-dependent travel-time cost at the
// morning peak) and k-shortest (under distance cost, the heavier Yen
// workload). Result names carry an @grid suffix, so a comma sweep
// (-routing-grid 16,64,256) emits a scale trajectory into BENCH_routing.json.
//
// Query counts scale down with the node count beyond grid 64 (the workload
// per query grows with the graph), and the Yen sweep caps at grid 256 —
// k-shortest on a million-node city is out of its workload class.
func runRouting(queries, grid, k int, prep bool) ([]BenchResult, error) {
	gcfg := roadnet.DefaultGenConfig()
	gcfg.Cols, gcfg.Rows = grid, grid
	genStart := time.Now()
	g := roadnet.Generate(gcfg)
	qs := queries
	if grid > 64 {
		// Keep the sweep's wall-clock bounded: per-query work grows with
		// the graph, so the query count shrinks with it.
		qs = max(8, queries*64*64/(grid*grid))
	}
	fmt.Printf("routing mode: %dx%d city (%d nodes, %d edges, generated in %v), %d queries per algorithm\n",
		grid, grid, g.NumNodes(), g.NumEdges(), time.Since(genStart).Round(time.Millisecond), qs)

	// Deterministic OD sweep. Generated cities are connected by
	// construction; the explicit reachability precheck is kept on small
	// grids (mirroring the historical workload exactly) and skipped on
	// large ones, where it would cost a full Dijkstra per OD.
	rng := rand.New(rand.NewSource(17))
	type od struct{ src, dst roadnet.NodeID }
	ods := make([]od, 0, qs)
	for len(ods) < qs {
		src := roadnet.NodeID(rng.Intn(g.NumNodes()))
		dst := roadnet.NodeID(rng.Intn(g.NumNodes()))
		if src == dst {
			continue
		}
		if grid <= 32 {
			if _, _, err := routing.ShortestPath(g, src, dst, routing.DistanceCost, 0); err != nil {
				continue
			}
		}
		ods = append(ods, od{src, dst})
	}
	// Batched fan-out: per OD, the bucket is the routingBatchTargets nodes
	// nearest the destination (BFS over out-edges from dst — deterministic),
	// modelling the engine's real many-to-many shape: scoring one origin
	// against a cluster of nearby arrival points (truth entries around a
	// destination), not against targets scattered across the continent.
	dstBuckets := make([][]roadnet.NodeID, len(ods))
	for i := range ods {
		dstBuckets[i] = nearbyNodes(g, ods[i].dst, routingBatchTargets)
	}
	peak := routing.At(0, 8, 0) // morning rush: congestion 2-3x free flow
	// Post-rush evening: free flow for the WHOLE route window. A night
	// departure (say 3:00) looks idle but puts million-node routes (~4 h)
	// into the morning rush right at arrival, where heuristic looseness at
	// the far end costs the most; 21:00 keeps even the longest sweep clear
	// of both rush windows.
	offpeak := routing.At(0, 21, 0)

	var prepTime *routing.Preprocessed
	var prepStats routing.PrepStats
	if prep {
		prepTime = routing.Preprocess(g, routing.TravelTimeCost, routing.DefaultPrepConfig())
		prepStats = prepTime.Stats()
		fmt.Printf("  prep       %d landmarks in %.0f ms, %.1f MB tables\n",
			prepStats.Landmarks, prepStats.BuildMs, float64(prepStats.TableBytes)/(1<<20))
	}
	// Counters are process-lifetime; report only this run's sweeps, not the
	// prechecks or preprocessing above.
	base := routing.CounterSnapshot()

	var results []BenchResult
	suffix := fmt.Sprintf("@%d", grid)
	// run appends one measurement and returns it by value; the Extra map is
	// shared with the appended entry, so later annotations on the returned
	// copy land in the emitted result.
	run := func(name string, ops int, f func(i int)) BenchResult {
		res := measure("routing/"+name+suffix, ops, func() {
			for i := 0; i < ops; i++ {
				f(i)
			}
		})
		rate := 1e9 / res.NsPerOp
		res.Extra = map[string]float64{
			"queries_per_sec": rate,
			"grid":            float64(grid),
			"nodes":           float64(g.NumNodes()),
			"edges":           float64(g.NumEdges()),
		}
		fmt.Printf("  %-14s %12.0f ns/op %10.0f queries/s %8.1f allocs/op\n",
			name, res.NsPerOp, rate, res.AllocsPerOp)
		results = append(results, res)
		return res
	}
	// Single-pair sweeps, at both departure times. Off-peak is where the ALT
	// bound meets the true cost (free flow == the landmark metric), so it
	// measures the tier's intrinsic pruning power; the morning peak shows the
	// honest time-dependent number, where congestion above the admissible
	// free-flow bound loosens any exact heuristic.
	addALT := func(alt, ast, dij BenchResult) {
		alt.Extra["prep_build_ms"] = prepStats.BuildMs
		alt.Extra["prep_table_mb"] = float64(prepStats.TableBytes) / (1 << 20)
		alt.Extra["landmarks"] = float64(prepStats.Landmarks)
		alt.Extra["speedup_vs_astar"] = ast.NsPerOp / alt.NsPerOp
		alt.Extra["speedup_vs_dijkstra"] = dij.NsPerOp / alt.NsPerOp
		fmt.Printf("  alt speedup  %.1fx vs astar, %.1fx vs dijkstra\n",
			ast.NsPerOp/alt.NsPerOp, dij.NsPerOp/alt.NsPerOp)
	}
	sweep := func(tag string, depart routing.SimTime) (dij, ast, alt BenchResult) {
		dij = run("dijkstra"+tag, qs, func(i int) {
			o := ods[i%len(ods)]
			_, _, _ = routing.ShortestPath(g, o.src, o.dst, routing.TravelTimeCost, depart)
		})
		ast = run("astar"+tag, qs, func(i int) {
			o := ods[i%len(ods)]
			_, _, _ = routing.AStar(g, o.src, o.dst, routing.TravelTimeCost, depart)
		})
		if prepTime != nil {
			alt = run("alt"+tag, qs, func(i int) {
				o := ods[i%len(ods)]
				_, _, _ = prepTime.AStar(o.src, o.dst, depart)
			})
			addALT(alt, ast, dij)
		}
		return dij, ast, alt
	}
	dij, _, alt := sweep("", peak)
	_, _, _ = sweep("-offpeak", offpeak)

	// Batched one-to-many: each op settles a cluster of routingBatchTargets
	// targets around the destination in one search. speedup_vs_single prices
	// the alternative: a loop of single-pair searches of the same tier.
	bq := max(4, qs/4)
	batch := run("batch", bq, func(i int) {
		o := ods[i%len(ods)]
		_, _, _ = routing.ShortestPaths(g, o.src, dstBuckets[i%len(ods)], routing.TravelTimeCost, peak)
	})
	batch.Extra["targets"] = routingBatchTargets
	batch.Extra["speedup_vs_single"] = dij.NsPerOp * routingBatchTargets / batch.NsPerOp
	if prepTime != nil {
		balt := run("batch-alt", bq, func(i int) {
			o := ods[i%len(ods)]
			_, _, _ = prepTime.ShortestPaths(o.src, dstBuckets[i%len(ods)], peak)
		})
		balt.Extra["targets"] = routingBatchTargets
		balt.Extra["speedup_vs_single"] = alt.NsPerOp * routingBatchTargets / balt.NsPerOp
	}
	if grid <= 256 {
		kq := qs
		if grid > 64 {
			kq = max(4, qs/4)
		}
		ks := run("kshortest", kq, func(i int) {
			o := ods[i%len(ods)]
			_, _, _ = routing.KShortest(g, o.src, o.dst, k, routing.DistanceCost, 0)
		})
		ks.Extra["k"] = float64(k)
	}

	rs := routing.CounterSnapshot()
	fmt.Printf("  engine     %d searches (%d A*, %d ALT, %d batch), %d heap pushes, pool %d hits / %d misses\n",
		rs.Searches-base.Searches, rs.AStarSearches-base.AStarSearches,
		rs.ALTSearches-base.ALTSearches, rs.BatchSearches-base.BatchSearches,
		rs.HeapPushes-base.HeapPushes, rs.PoolHits-base.PoolHits, rs.PoolMisses-base.PoolMisses)
	return results, nil
}

// nearbyNodes collects n nodes around center (inclusive) by breadth-first
// search over out-edges — a deterministic stand-in for "the arrival points
// clustered around a destination" that the batched API serves in production.
func nearbyNodes(g *roadnet.Graph, center roadnet.NodeID, n int) []roadnet.NodeID {
	out := make([]roadnet.NodeID, 0, n)
	seen := map[roadnet.NodeID]bool{center: true}
	queue := []roadnet.NodeID{center}
	for len(queue) > 0 && len(out) < n {
		u := queue[0]
		queue = queue[1:]
		out = append(out, u)
		for _, eid := range g.Out(u) {
			v := g.Edge(eid).To
			if !seen[v] {
				seen[v] = true
				queue = append(queue, v)
			}
		}
	}
	return out
}

// runIngest measures trajectory-ingestion throughput: total synthetic trips
// (replays of corpus routes with jittered departure times) are streamed
// through System.IngestTrips in fixed-size batches, exercising validation,
// the incremental mining-index update, route-cache invalidation, and the
// storage append. A Mine-backed Recommend after the stream confirms the
// ingested corpus still answers queries at index speed.
func runIngest(total, batch int) (BenchResult, error) {
	if batch < 1 {
		batch = 1
	}
	cfg := core.SmallScenarioConfig()
	fmt.Printf("building scenario (%dx%d city)...\n", cfg.City.Cols, cfg.City.Rows)
	scn := core.BuildScenario(cfg)

	var pool []traj.Trajectory
	for _, tr := range scn.Data.Trips {
		if !tr.Route.Empty() {
			pool = append(pool, tr)
		}
	}
	if len(pool) == 0 {
		return BenchResult{}, fmt.Errorf("scenario produced no usable trips")
	}
	trips := make([]traj.Trajectory, total)
	for i := range trips {
		src := pool[i%len(pool)]
		trips[i] = traj.Trajectory{
			Driver: src.Driver,
			Depart: src.Depart.Add(float64(i%240) - 120), // spread over ±2 h
			Route:  src.Route,
		}
	}

	var accepted, rejected int
	res := measure(fmt.Sprintf("ingest/batch=%d", batch), total, func() {
		for off := 0; off < total; off += batch {
			end := off + batch
			if end > total {
				end = total
			}
			rep := scn.System.IngestTrips(trips[off:end])
			accepted += rep.Accepted
			rejected += len(rep.Rejected)
		}
	})
	elapsed := time.Duration(res.NsPerOp * float64(total))
	rate := float64(total) / elapsed.Seconds()

	fmt.Printf("\n== ingestion (batch=%d) ==\n", batch)
	fmt.Printf("  trips      %d (%d accepted, %d rejected)\n", total, accepted, rejected)
	fmt.Printf("  elapsed    %v\n", elapsed.Round(time.Millisecond))
	fmt.Printf("  rate       %.0f trips/s\n", rate)
	fmt.Printf("  corpus     %d trips\n", scn.System.CorpusSize())

	// One full-pipeline query over the grown corpus: the miners answer from
	// the updated indexes.
	q := pool[0]
	start := time.Now()
	if _, err := scn.System.Recommend(context.Background(), core.Request{
		From: q.Route.Source(), To: q.Route.Dest(), Depart: q.Depart,
	}); err != nil {
		return BenchResult{}, fmt.Errorf("post-ingest recommend: %w", err)
	}
	fmt.Printf("  post-ingest recommend  %v\n", time.Since(start).Round(time.Microsecond))

	res.Extra = map[string]float64{
		"trips_per_sec": rate,
		"batch":         float64(batch),
		"accepted":      float64(accepted),
	}
	return res, nil
}

// runThroughput measures end-to-end Recommend throughput over the standard
// small scenario: `requests` trip-derived requests spread across `workers`
// goroutines. With -cold, truth reuse is disabled so every request runs the
// full evaluation (the route cache then absorbs the repeat graph searches;
// add -nocache to measure the uncached pipeline). Otherwise the run reports
// the steady-state (truth reuse) serving rate.
func runThroughput(workers, requests int, cold, nocache bool) (BenchResult, error) {
	cfg := core.SmallScenarioConfig()
	if cold {
		cfg.System.ReuseTruth = false
	}
	if nocache {
		cfg.System.RouteCacheCapacity = 0
	}
	fmt.Printf("building scenario (%dx%d city, %d workers)...\n",
		cfg.City.Cols, cfg.City.Rows, cfg.Workers.NumWorkers)
	scn := core.BuildScenario(cfg)

	var reqs []core.Request
	for _, tr := range scn.Data.Trips {
		if tr.Route.Empty() {
			continue
		}
		reqs = append(reqs, core.Request{
			From: tr.Route.Source(), To: tr.Route.Dest(), Depart: tr.Depart,
		})
	}
	if len(reqs) == 0 {
		return BenchResult{}, fmt.Errorf("scenario produced no usable trips")
	}

	var (
		next   atomic.Int64
		errs   atomic.Int64
		stages [5]atomic.Int64
		wg     sync.WaitGroup
	)
	mode := "warm"
	if cold {
		mode = "cold"
	}
	res := measure(fmt.Sprintf("throughput/%s/parallel=%d", mode, workers), requests, func() {
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := next.Add(1) - 1
					if i >= int64(requests) {
						return
					}
					resp, err := scn.System.Recommend(context.Background(), reqs[i%int64(len(reqs))])
					if err != nil {
						errs.Add(1)
						continue
					}
					if st := int(resp.Stage); st >= 0 && st < len(stages) {
						stages[st].Add(1)
					}
				}
			}()
		}
		wg.Wait()
	})
	elapsed := time.Duration(res.NsPerOp * float64(requests))

	fmt.Printf("\n== throughput (%s, parallel=%d) ==\n", mode, workers)
	fmt.Printf("  requests   %d (%d errors)\n", requests, errs.Load())
	fmt.Printf("  elapsed    %v\n", elapsed.Round(time.Millisecond))
	rate := float64(requests) / elapsed.Seconds()
	fmt.Printf("  rate       %.0f req/s\n", rate)
	res.Extra = map[string]float64{"rate_rps": rate, "errors": float64(errs.Load())}
	for st := range stages {
		if n := stages[st].Load(); n > 0 {
			fmt.Printf("  stage %-10s %d\n", core.Stage(st), n)
			res.Extra["stage_"+core.Stage(st).String()] = float64(n)
		}
	}
	cs := scn.System.RouteCacheStats()
	fmt.Printf("  route cache  hits=%d misses=%d (%.0f%% hit) size=%d/%d evictions=%d invalidations=%d\n",
		cs.Hits, cs.Misses, 100*cs.HitRate(), cs.Size, cs.Capacity, cs.Evictions, cs.Invalidations)
	fmt.Printf("  truths       %d\n", scn.System.TruthDB().Len())
	return res, nil
}
