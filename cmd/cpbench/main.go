// Command cpbench regenerates the tables and figures of the reconstructed
// evaluation (DESIGN.md §4, EXPERIMENTS.md).
//
// Usage:
//
//	cpbench -exp all            # every experiment at full scale
//	cpbench -exp E1,E4 -scale 0.5
//	cpbench -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"crowdplanner/internal/experiments"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "comma-separated experiment IDs (E1..E10, A1, A2) or 'all'")
		scale = flag.Float64("scale", 1.0, "workload scale factor (1 = EXPERIMENTS.md scale)")
		list  = flag.Bool("list", false, "list available experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, s := range experiments.Registry() {
			fmt.Printf("%-4s %s\n", s.ID, s.Title)
		}
		return
	}
	var ids []string
	if *exp != "all" && *exp != "" {
		for _, id := range strings.Split(*exp, ",") {
			if id = strings.TrimSpace(id); id != "" {
				ids = append(ids, id)
			}
		}
	}
	if err := experiments.RunAll(os.Stdout, ids, *scale); err != nil {
		fmt.Fprintln(os.Stderr, "cpbench:", err)
		os.Exit(1)
	}
}
