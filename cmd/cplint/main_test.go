package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// scratchModule writes a throwaway module so exit codes can be asserted
// against trees cplint has an opinion about, without touching the real one.
func scratchModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module scratch\n\ngo 1.24\n"
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const cleanSrc = `package scratch

func Fine(n int) int { return n + 1 }
`

const sentinelViolation = `package scratch

import "errors"

var ErrX = errors.New("x")

func Bad(err error) bool { return err == ErrX }
`

func runCplint(t *testing.T, dir string, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr, dir)
	return code, stdout.String(), stderr.String()
}

func TestListExitsZeroAndNamesAllAnalyzers(t *testing.T) {
	code, out, _ := runCplint(t, "", "-list")
	if code != 0 {
		t.Fatalf("-list exit = %d, want 0", code)
	}
	names := []string{
		"cplint", "ctxflow", "detorder", "floatdet", "goroleak", "hotalloc",
		"lockappend", "lockorder", "mutguard", "poolescape", "sentinel", "wallclock",
	}
	for _, name := range names {
		if !strings.Contains(out, name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, out)
		}
	}
	if lines := strings.Count(strings.TrimSpace(out), "\n") + 1; lines != len(names) {
		t.Errorf("-list printed %d lines, want %d (one per analyzer):\n%s", lines, len(names), out)
	}
}

func TestExitZeroOnCleanTree(t *testing.T) {
	dir := scratchModule(t, map[string]string{"clean.go": cleanSrc})
	code, out, errOut := runCplint(t, dir, "./...")
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out, errOut)
	}
}

func TestExitOneOnFindings(t *testing.T) {
	dir := scratchModule(t, map[string]string{"bad.go": sentinelViolation})
	code, out, _ := runCplint(t, dir, "./...")
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s", code, out)
	}
	if !strings.Contains(out, "[sentinel]") || !strings.Contains(out, "errors.Is") {
		t.Errorf("finding not reported:\n%s", out)
	}
}

func TestExitTwoOnLoadError(t *testing.T) {
	dir := scratchModule(t, map[string]string{"clean.go": cleanSrc})
	code, _, errOut := runCplint(t, dir, "./nonexistent")
	if code != 2 {
		t.Fatalf("bad pattern: exit = %d, want 2", code)
	}
	if errOut == "" {
		t.Error("load error produced no stderr")
	}

	dir2 := scratchModule(t, map[string]string{"broken.go": "package scratch\n\nfunc Broken() { return undefinedSymbol }\n"})
	code, _, errOut = runCplint(t, dir2, "./...")
	if code != 2 {
		t.Fatalf("type error: exit = %d, want 2 (stderr: %s)", code, errOut)
	}
}

// TestPartialLoadStillAnalyzes pins the robustness contract: one broken
// package must not abort the run. The loadable packages are analyzed, the
// broken one is reported as a finding, and the exit code is 1 (findings),
// not 2 (nothing analyzed).
func TestPartialLoadStillAnalyzes(t *testing.T) {
	dir := scratchModule(t, map[string]string{
		"bad.go":           sentinelViolation,
		"broken/broken.go": "package broken\n\nfunc Broken() int { return undefinedSymbol }\n",
	})
	code, out, _ := runCplint(t, dir, "./...")
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s", code, out)
	}
	if !strings.Contains(out, "[sentinel]") {
		t.Errorf("finding from the loadable package missing:\n%s", out)
	}
	if !strings.Contains(out, "scratch/broken failed to load") {
		t.Errorf("broken package not reported:\n%s", out)
	}
}

// TestTimingFlag checks -timing emits the load/analyzer breakdown without
// changing the exit code.
func TestTimingFlag(t *testing.T) {
	// The package sits on a deterministic internal path so the dataflow tier
	// (floatdet) builds CFGs for it and the cfg timing section is populated.
	dir := scratchModule(t, map[string]string{
		"internal/core/clean.go": "package core\n\nfunc Fine(n int) int { return n + 1 }\n",
	})
	code, out, errOut := runCplint(t, dir, "-timing", "./...")
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out, errOut)
	}
	for _, want := range []string{"timing: total", "timing: load", "timing: call graph", "timing: cfg build", "timing: analyzers:"} {
		if !strings.Contains(out, want) {
			t.Errorf("-timing output missing %q:\n%s", want, out)
		}
	}

	code, out, _ = runCplint(t, dir, "-timing", "-json", "./...")
	if code != 0 {
		t.Fatalf("-timing -json exit = %d, want 0", code)
	}
	var rep jsonReport
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("-timing -json output is not JSON: %v\n%s", err, out)
	}
	if len(rep.LoadTimings) == 0 || len(rep.AnalyzerTimings) == 0 {
		t.Errorf("timing sections empty: %+v", rep)
	}
	// The scratch package has function bodies and the dataflow analyzers run
	// by default, so the shared CFG cache must report per-package build time.
	if len(rep.CFGTimings) == 0 {
		t.Errorf("cfg_timings empty under -timing -json: %+v", rep)
	}
}

func TestExitTwoOnUnknownAnalyzer(t *testing.T) {
	code, _, errOut := runCplint(t, "", "-only", "nosuchcheck")
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errOut, "unknown analyzer") {
		t.Errorf("stderr = %q, want mention of unknown analyzer", errOut)
	}
}

func TestOnlyScopesTheRun(t *testing.T) {
	dir := scratchModule(t, map[string]string{"bad.go": sentinelViolation})
	if code, out, _ := runCplint(t, dir, "-only", "ctxflow", "./..."); code != 0 {
		t.Fatalf("-only ctxflow exit = %d, want 0 (sentinel finding must not run)\n%s", code, out)
	}
	if code, _, _ := runCplint(t, dir, "-only", "sentinel", "./..."); code != 1 {
		t.Fatalf("-only sentinel exit = %d, want 1", code)
	}
}

func TestJSONOutput(t *testing.T) {
	dir := scratchModule(t, map[string]string{"bad.go": sentinelViolation})
	code, out, _ := runCplint(t, dir, "-json", "./...")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	var rep jsonReport
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("-json output is not JSON: %v\n%s", err, out)
	}
	if len(rep.Findings) != 1 {
		t.Fatalf("findings = %d, want 1: %+v", len(rep.Findings), rep.Findings)
	}
	f := rep.Findings[0]
	if f.Analyzer != "sentinel" || f.File != "bad.go" || f.Line <= 0 || f.Col <= 0 {
		t.Errorf("unexpected finding: %+v", f)
	}
	if rep.Packages != 1 {
		t.Errorf("packages = %d, want 1", rep.Packages)
	}
}

// TestSuppressionRoundTrip pins the end-to-end annotation flow the repo
// relies on: a justified suppression silences the finding (and is counted),
// a reasonless one fails the run.
func TestSuppressionRoundTrip(t *testing.T) {
	justified := strings.Replace(sentinelViolation,
		"return err == ErrX",
		"//cplint:ignore sentinel -- test: identity is the contract here\n\treturn err == ErrX", 1)
	dir := scratchModule(t, map[string]string{"bad.go": justified})
	code, out, _ := runCplint(t, dir, "-json", "./...")
	if code != 0 {
		t.Fatalf("justified suppression: exit = %d, want 0\n%s", code, out)
	}
	var rep jsonReport
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Suppressed != 1 {
		t.Errorf("suppressed = %d, want 1", rep.Suppressed)
	}

	reasonless := strings.Replace(sentinelViolation,
		"return err == ErrX",
		"//cplint:ignore sentinel\n\treturn err == ErrX", 1)
	dir2 := scratchModule(t, map[string]string{"bad.go": reasonless})
	code, out, _ = runCplint(t, dir2, "./...")
	if code != 1 {
		t.Fatalf("reasonless suppression: exit = %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "requires a written justification") {
		t.Errorf("missing-reason diagnostic absent:\n%s", out)
	}
}
