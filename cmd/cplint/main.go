// Command cplint runs CrowdPlanner's project-invariant static-analysis
// suite (internal/analysis) over the module: determinism of map iteration,
// the no-I/O-under-lock WAL discipline, context propagation, wall-clock and
// global-RNG hygiene, and errors.Is classification of sentinels.
//
// Usage:
//
//	go run ./cmd/cplint [-json] [-only a,b] [-list] [packages...]
//
// Packages default to ./... . Exit codes: 0 clean, 1 findings, 2 load or
// usage error — so CI can distinguish "violations" from "could not analyze".
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"crowdplanner/internal/analysis"
	"crowdplanner/internal/analysis/analyzers"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, ""))
}

// jsonFinding is the machine-readable diagnostic shape (-json).
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// jsonReport is the top-level -json document.
type jsonReport struct {
	Findings   []jsonFinding `json:"findings"`
	Suppressed int           `json:"suppressed"`
	Packages   int           `json:"packages"`
}

// run is the testable entry point; dir overrides the working directory for
// package loading ("" = process cwd).
func run(args []string, stdout, stderr io.Writer, dir string) int {
	fs := flag.NewFlagSet("cplint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as JSON on stdout")
	list := fs.Bool("list", false, "list available analyzers and exit")
	only := fs.String("only", "", "comma-separated subset of analyzers to run")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analyzers.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	selected, err := analyzers.Select(*only)
	if err != nil {
		fmt.Fprintln(stderr, "cplint:", err)
		return 2
	}
	patterns := fs.Args()
	loader := analysis.NewLoader(dir)
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "cplint: load:", err)
		return 2
	}
	res := analysis.Run(pkgs, selected, analyzers.Names())

	if *jsonOut {
		rep := jsonReport{Findings: []jsonFinding{}, Suppressed: res.Suppressed, Packages: len(pkgs)}
		for _, d := range res.Diagnostics {
			rep.Findings = append(rep.Findings, jsonFinding{
				Analyzer: d.Analyzer,
				File:     relPath(dir, d.Pos.Filename),
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(stderr, "cplint:", err)
			return 2
		}
	} else {
		for _, d := range res.Diagnostics {
			d.Pos.Filename = relPath(dir, d.Pos.Filename)
			fmt.Fprintln(stdout, d.String())
		}
		fmt.Fprintf(stdout, "cplint: %d package(s), %d finding(s), %d suppressed\n",
			len(pkgs), len(res.Diagnostics), res.Suppressed)
	}
	if len(res.Diagnostics) > 0 {
		return 1
	}
	return 0
}

// relPath shortens absolute file names relative to the analysis root for
// readable, stable output.
func relPath(dir, file string) string {
	base := dir
	if base == "" {
		base, _ = os.Getwd()
	}
	if base == "" {
		return file
	}
	if rel, err := filepath.Rel(base, file); err == nil && !filepath.IsAbs(rel) &&
		len(rel) < len(file) {
		return rel
	}
	return file
}
