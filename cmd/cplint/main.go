// Command cplint runs CrowdPlanner's project-invariant static-analysis
// suite (internal/analysis) over the module: determinism of map iteration
// and of floating-point folds, the no-I/O-under-lock WAL discipline,
// lock-ordering deadlock freedom, machine-checked //cplint:guardedby field
// contracts, sync.Pool object lifetimes, goroutine termination signals,
// allocation-free hot paths, context propagation, wall-clock and global-RNG
// hygiene, and errors.Is classification of sentinels.
//
// Usage:
//
//	go run ./cmd/cplint [-json] [-only a,b] [-list] [-timing] [packages...]
//
// Packages default to ./... . Exit codes: 0 clean, 1 findings (including
// packages that failed to load while others were analyzed), 2 usage error or
// nothing could be analyzed at all — so CI can distinguish "violations" from
// "could not analyze". A package that fails to parse or type-check is
// reported as a finding and the rest of the tree is still checked.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"crowdplanner/internal/analysis"
	"crowdplanner/internal/analysis/analyzers"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, ""))
}

// jsonFinding is the machine-readable diagnostic shape (-json).
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// jsonTiming mirrors one -timing line in the JSON report.
type jsonTiming struct {
	Name string `json:"name"`
	Ms   int64  `json:"ms"`
}

// jsonReport is the top-level -json document.
type jsonReport struct {
	Findings   []jsonFinding `json:"findings"`
	Suppressed int           `json:"suppressed"`
	Packages   int           `json:"packages"`
	// Timing sections are present only under -timing.
	LoadTimings     []jsonTiming `json:"load_timings,omitempty"`
	AnalyzerTimings []jsonTiming `json:"analyzer_timings,omitempty"`
	CallGraphMs     int64        `json:"callgraph_ms,omitempty"`
	// CFGTimings reports, per package, the wall time spent building the
	// shared control-flow graphs the dataflow analyzers (poolescape,
	// mutguard, floatdet) run over; CfgMs is their sum.
	CFGTimings []jsonTiming `json:"cfg_timings,omitempty"`
	CfgMs      int64        `json:"cfg_ms,omitempty"`
	TotalMs    int64        `json:"total_ms,omitempty"`
}

// run is the testable entry point; dir overrides the working directory for
// package loading ("" = process cwd).
func run(args []string, stdout, stderr io.Writer, dir string) int {
	start := time.Now()
	fs := flag.NewFlagSet("cplint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as JSON on stdout")
	list := fs.Bool("list", false, "list available analyzers and exit")
	only := fs.String("only", "", "comma-separated subset of analyzers to run")
	timing := fs.Bool("timing", false, "report per-package load and per-analyzer wall times")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analyzers.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	selected, err := analyzers.Select(*only)
	if err != nil {
		fmt.Fprintln(stderr, "cplint:", err)
		return 2
	}
	patterns := fs.Args()
	loader := analysis.NewLoader(dir)
	pkgs, loadErrs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "cplint: load:", err)
		return 2
	}
	if len(pkgs) == 0 {
		// Nothing was analyzable: that is an environment problem, not a
		// finding. Surface every load failure and refuse the green checkmark.
		for _, le := range loadErrs {
			fmt.Fprintln(stderr, "cplint: load:", le.Error())
		}
		fmt.Fprintln(stderr, "cplint: no packages could be analyzed")
		return 2
	}
	res := analysis.Run(pkgs, selected, analyzers.Names())

	// Broken packages are findings under the reserved "cplint" name: the run
	// continues, the report names the casualty, and the exit code still
	// demands a fix.
	var diags []analysis.Diagnostic
	for _, le := range loadErrs {
		d := analysis.Diagnostic{
			Analyzer: "cplint",
			Pos:      le.Pos,
			Message:  fmt.Sprintf("package %s failed to load: %v (its findings are unknown this run)", le.Path, le.Err),
		}
		diags = append(diags, d)
	}
	diags = append(diags, res.Diagnostics...)

	if *jsonOut {
		rep := jsonReport{Findings: []jsonFinding{}, Suppressed: res.Suppressed, Packages: len(pkgs)}
		for _, d := range diags {
			rep.Findings = append(rep.Findings, jsonFinding{
				Analyzer: d.Analyzer,
				File:     relPath(dir, d.Pos.Filename),
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Message:  d.Message,
			})
		}
		if *timing {
			for _, t := range loader.Timings() {
				rep.LoadTimings = append(rep.LoadTimings, jsonTiming{Name: t.Name, Ms: t.Duration.Milliseconds()})
			}
			for _, t := range res.AnalyzerTimings {
				rep.AnalyzerTimings = append(rep.AnalyzerTimings, jsonTiming{Name: t.Name, Ms: t.Duration.Milliseconds()})
			}
			rep.CallGraphMs = res.CallGraphTime.Milliseconds()
			for _, t := range res.CFGTimings {
				rep.CFGTimings = append(rep.CFGTimings, jsonTiming{Name: t.Name, Ms: t.Duration.Milliseconds()})
			}
			rep.CfgMs = res.CFGTime.Milliseconds()
			rep.TotalMs = time.Since(start).Milliseconds()
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(stderr, "cplint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			d.Pos.Filename = relPath(dir, d.Pos.Filename)
			fmt.Fprintln(stdout, d.String())
		}
		fmt.Fprintf(stdout, "cplint: %d package(s), %d finding(s), %d suppressed\n",
			len(pkgs), len(diags), res.Suppressed)
		if *timing {
			printTimings(stdout, loader.Timings(), res, time.Since(start))
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// printTimings renders the -timing report: slowest package loads first, then
// the call graph and each analyzer in catalogue order.
func printTimings(w io.Writer, loads []analysis.Timing, res analysis.Result, total time.Duration) {
	fmt.Fprintf(w, "timing: total %s\n", total.Round(time.Millisecond))
	fmt.Fprintf(w, "timing: load (slowest first):\n")
	for _, t := range loads {
		fmt.Fprintf(w, "timing:   %-50s %8s\n", t.Name, t.Duration.Round(time.Millisecond))
	}
	fmt.Fprintf(w, "timing: call graph %s\n", res.CallGraphTime.Round(time.Millisecond))
	fmt.Fprintf(w, "timing: cfg build %s (per package):\n", res.CFGTime.Round(time.Millisecond))
	for _, t := range res.CFGTimings {
		fmt.Fprintf(w, "timing:   %-50s %8s\n", t.Name, t.Duration.Round(time.Millisecond))
	}
	fmt.Fprintf(w, "timing: analyzers:\n")
	for _, t := range res.AnalyzerTimings {
		fmt.Fprintf(w, "timing:   %-12s %8s\n", t.Name, t.Duration.Round(time.Millisecond))
	}
}

// relPath shortens absolute file names relative to the analysis root for
// readable, stable output.
func relPath(dir, file string) string {
	base := dir
	if base == "" {
		base, _ = os.Getwd()
	}
	if base == "" {
		return file
	}
	if rel, err := filepath.Rel(base, file); err == nil && !filepath.IsAbs(rel) &&
		len(rel) < len(file) {
		return rel
	}
	return file
}
