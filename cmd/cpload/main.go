// Command cpload is an open-loop load driver for the CrowdPlanner serving
// path: it replays a mixed workload (synchronous recommends, batch
// recommends, trajectory ingestion, truth reads) against a live server at a
// fixed arrival rate, with OD pairs drawn Zipf-skewed from the scenario's
// trip corpus, and reports latency percentiles and an error budget.
//
// Open-loop means arrivals do not wait for completions: when the server
// falls behind, requests pile up exactly as they would from real clients,
// which is what makes the overload-protection behaviour (429 shedding,
// bounded queues) observable. Requests are issued with a plain http.Client —
// no SDK retries — so a latency sample is one request, not a retry loop.
//
// Usage:
//
//	cpload -addr http://localhost:8080 -rate 200 -duration 10s
//	cpload -addr http://localhost:8080 -rate 200 -json BENCH_serving.json
//	cpload -proof -json BENCH_serving.json
//
// -proof mode is self-contained: it boots an in-process server (overload
// protection on), calibrates its capacity closed-loop, then runs the
// open-loop workload twice — uncontended at 0.5× capacity and overloaded at
// 2× — and records both, plus the shed behaviour, in one artifact. The
// acceptance property it demonstrates: at 2× capacity the server sheds with
// 429s while the p99 of *accepted* requests stays within a small factor of
// the uncontended p99, instead of every request's latency growing without
// bound.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"crowdplanner/internal/core"
	"crowdplanner/internal/roadnet"
	"crowdplanner/internal/server"
	"crowdplanner/internal/traj"
)

// od is one origin–destination pair with a representative departure.
type od struct {
	from, to  roadnet.NodeID
	departMin float64
	nodes     []int64 // the corpus route, reused as an ingestable trip
}

// workload is the request generator: the OD universe and the mix weights.
type workload struct {
	ods  []od
	zipf *rand.Zipf
	rng  *rand.Rand

	mu      sync.Mutex
	ingestN int // distinct departure shift per synthetic ingested trip
}

func newWorkload(ods []od, seed int64) *workload {
	rng := rand.New(rand.NewSource(seed))
	// s=1.2 gives the classic hot-OD skew: a few commuter pairs dominate,
	// the tail stays warm enough to keep the route cache honest.
	return &workload{
		ods:  ods,
		zipf: rand.NewZipf(rng, 1.2, 1, uint64(len(ods)-1)),
		rng:  rng,
	}
}

func (w *workload) pick() od { return w.ods[w.zipf.Uint64()] }

// kind is one request type in the mix.
type kind int

const (
	kindRecommend kind = iota
	kindBatch
	kindIngest
	kindTruths
)

func (k kind) String() string {
	return [...]string{"recommend", "batch", "ingest", "truths"}[k]
}

// next draws the next request kind: 65% recommend, 10% batch, 10% ingest,
// 15% truth reads.
func (w *workload) next() kind {
	w.mu.Lock()
	defer w.mu.Unlock()
	p := w.rng.Float64()
	switch {
	case p < 0.65:
		return kindRecommend
	case p < 0.75:
		return kindBatch
	case p < 0.85:
		return kindIngest
	default:
		return kindTruths
	}
}

// body builds the request for a kind. Safe for concurrent use.
func (w *workload) body(k kind) (method, path string, payload any) {
	switch k {
	case kindRecommend:
		o := w.pick()
		return http.MethodPost, "/v1/recommend", map[string]any{
			"from": o.from, "to": o.to, "depart_min": o.departMin,
		}
	case kindBatch:
		items := make([]map[string]any, 4)
		for i := range items {
			o := w.pick()
			items[i] = map[string]any{"from": o.from, "to": o.to, "depart_min": o.departMin}
		}
		return http.MethodPost, "/v1/recommend/batch", map[string]any{"items": items}
	case kindIngest:
		o := w.pick()
		w.mu.Lock()
		w.ingestN++
		shift := float64(w.ingestN % 360)
		w.mu.Unlock()
		return http.MethodPost, "/v1/trajectories", map[string]any{
			"trips": []map[string]any{{
				"driver": 1, "depart_min": o.departMin + shift, "nodes": o.nodes,
			}},
		}
	default:
		return http.MethodGet, "/v1/truths?limit=20", nil
	}
}

// sample is one completed request.
type sample struct {
	kind    kind
	status  int // 0 = transport error
	latency time.Duration
}

// runResult is one open-loop run's aggregate, serialized to the artifact.
type runResult struct {
	Name        string  `json:"name"`
	RateRPS     float64 `json:"rate_rps"`
	DurationSec float64 `json:"duration_sec"`
	Total       int     `json:"total"`
	OK          int     `json:"ok"`
	Shed        int     `json:"shed_429"`
	Degraded    int     `json:"degraded_503"`
	Errors      int     `json:"errors"` // transport failures and non-2xx besides 429/503
	// ErrorBudget is the fraction of requests that were neither served nor
	// cleanly shed — the SLO-relevant failure ratio.
	ErrorBudget float64 `json:"error_budget"`
	// Latency over accepted (2xx) requests only: shed 429s return in
	// microseconds and would flatter the percentiles.
	AcceptedP50Ms  float64 `json:"accepted_p50_ms"`
	AcceptedP99Ms  float64 `json:"accepted_p99_ms"`
	AcceptedP999Ms float64 `json:"accepted_p999_ms"`
	// Latency over every request, sheds included — what callers observe.
	AllP50Ms      float64        `json:"all_p50_ms"`
	AllP99Ms      float64        `json:"all_p99_ms"`
	ThroughputRPS float64        `json:"throughput_rps"` // accepted per second
	ByKind        map[string]int `json:"by_kind"`
}

// percentile returns the p-th percentile (0..1) of sorted durations in ms.
func percentile(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return float64(sorted[i]) / float64(time.Millisecond)
}

// openLoop fires requests at the target rate for the duration, never waiting
// for completions, and aggregates the samples.
func openLoop(name, base string, hc *http.Client, w *workload, rate float64, dur time.Duration) runResult {
	interval := time.Duration(float64(time.Second) / rate)
	if interval <= 0 || interval > time.Millisecond {
		interval = time.Millisecond
	}
	var (
		mu      sync.Mutex
		samples []sample
		wg      sync.WaitGroup
	)
	fire := func() {
		defer wg.Done()
		k := w.next()
		method, path, payload := w.body(k)
		var body *bytes.Reader
		if payload != nil {
			b, err := json.Marshal(payload)
			if err != nil {
				log.Fatal(err)
			}
			body = bytes.NewReader(b)
		} else {
			body = bytes.NewReader(nil)
		}
		req, err := http.NewRequest(method, base+path, body)
		if err != nil {
			log.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		t0 := time.Now()
		resp, err := hc.Do(req)
		lat := time.Since(t0)
		s := sample{kind: k, latency: lat}
		if err == nil {
			s.status = resp.StatusCode
			_ = resp.Body.Close()
		}
		mu.Lock()
		samples = append(samples, s)
		mu.Unlock()
	}

	// Deficit pacing: every millisecond, launch however many arrivals the
	// schedule is behind by. A plain ticker cannot reach high rates (ticks
	// coalesce), which would silently turn "2× capacity" into "under
	// capacity" and fake a passing overload run.
	start := time.Now()
	launched := 0
	for {
		elapsed := time.Since(start)
		if elapsed >= dur {
			break
		}
		expect := int(rate * elapsed.Seconds())
		for launched < expect {
			launched++
			wg.Add(1)
			go fire()
		}
		time.Sleep(interval)
	}
	wg.Wait()

	res := runResult{
		Name: name, RateRPS: rate, DurationSec: dur.Seconds(),
		Total: len(samples), ByKind: map[string]int{},
	}
	var accepted, all []time.Duration
	for _, s := range samples {
		res.ByKind[s.kind.String()]++
		all = append(all, s.latency)
		switch {
		case s.status >= 200 && s.status < 300:
			res.OK++
			accepted = append(accepted, s.latency)
		case s.status == http.StatusTooManyRequests:
			res.Shed++
		case s.status == http.StatusServiceUnavailable:
			res.Degraded++
		default:
			res.Errors++
		}
	}
	if res.Total > 0 {
		res.ErrorBudget = float64(res.Errors) / float64(res.Total)
	}
	sort.Slice(accepted, func(i, j int) bool { return accepted[i] < accepted[j] })
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	res.AcceptedP50Ms = percentile(accepted, 0.50)
	res.AcceptedP99Ms = percentile(accepted, 0.99)
	res.AcceptedP999Ms = percentile(accepted, 0.999)
	res.AllP50Ms = percentile(all, 0.50)
	res.AllP99Ms = percentile(all, 0.99)
	res.ThroughputRPS = float64(res.OK) / dur.Seconds()
	return res
}

// calibrate measures the server's closed-loop capacity: N workers replay the
// same request mix back-to-back, and the sustained completion rate is the
// capacity estimate the proof runs scale from. Calibrating on the mix
// matters: ingests invalidate hot route-cache entries, so mixed capacity is
// far below the cached-recommend rate a recommend-only probe would report.
func calibrate(base string, hc *http.Client, w *workload, workers int, dur time.Duration) (rps float64) {
	var done atomic.Int64
	stop := time.Now().Add(dur)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(stop) {
				method, path, payload := w.body(w.next())
				var rd *bytes.Reader
				if payload != nil {
					b, _ := json.Marshal(payload)
					rd = bytes.NewReader(b)
				} else {
					rd = bytes.NewReader(nil)
				}
				req, err := http.NewRequest(method, base+path, rd)
				if err != nil {
					continue
				}
				req.Header.Set("Content-Type", "application/json")
				resp, err := hc.Do(req)
				if err != nil {
					continue
				}
				_ = resp.Body.Close()
				if resp.StatusCode >= 200 && resp.StatusCode < 300 {
					done.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	return float64(done.Load()) / dur.Seconds()
}

// buildODs regenerates the scenario's trip corpus (deterministic from the
// size name, exactly as cpserver builds it) and extracts the OD universe.
func buildODs(size string) []od {
	cfg := core.DefaultScenarioConfig()
	if size == "small" {
		cfg = core.SmallScenarioConfig()
	}
	g := roadnet.Generate(cfg.City)
	drivers := traj.NewPopulation(g, cfg.Population)
	data := traj.GenerateDataset(g, drivers, cfg.Dataset)
	var ods []od
	seen := map[[2]roadnet.NodeID]bool{}
	for _, tr := range data.Trips {
		if tr.Route.Empty() {
			continue
		}
		key := [2]roadnet.NodeID{tr.Route.Source(), tr.Route.Dest()}
		if seen[key] {
			continue
		}
		seen[key] = true
		nodes := make([]int64, len(tr.Route.Nodes))
		for i, n := range tr.Route.Nodes {
			nodes[i] = int64(n)
		}
		ods = append(ods, od{from: key[0], to: key[1], departMin: float64(tr.Depart), nodes: nodes})
	}
	return ods
}

// artifact is the BENCH_serving.json shape.
type artifact struct {
	GeneratedBy string      `json:"generated_by"`
	Size        string      `json:"size"`
	Runs        []runResult `json:"runs"`
	// Proof-mode derivations; absent in plain runs.
	Proof *proofSummary `json:"proof,omitempty"`
}

type proofSummary struct {
	CapacityRPS float64 `json:"capacity_rps"`
	// ShedRatio is the fraction of overload-run requests shed with 429 —
	// the pressure relief valve actually firing.
	ShedRatio float64 `json:"shed_ratio"`
	// P99Ratio is overloaded accepted-p99 over uncontended accepted-p99:
	// the "accepted requests stay fast" property.
	P99Ratio        float64 `json:"p99_ratio"`
	GoroutinesAfter int     `json:"goroutines_after_drain"`
}

func main() {
	var (
		addr     = flag.String("addr", "http://localhost:8080", "base URL of the target server")
		size     = flag.String("size", "small", "scenario size the target serves (small or default); must match the server's -size")
		rate     = flag.Float64("rate", 50, "open-loop arrival rate, requests/sec")
		duration = flag.Duration("duration", 10*time.Second, "run length")
		seed     = flag.Int64("seed", 1, "workload RNG seed")
		jsonOut  = flag.String("json", "", "write the results artifact to this file")
		proof    = flag.Bool("proof", false, "self-contained before/after overload proof (boots its own server; ignores -addr/-rate)")
		proofDur = flag.Duration("proof-duration", 8*time.Second, "duration of each proof phase")
	)
	flag.Parse()

	ods := buildODs(*size)
	if len(ods) < 2 {
		log.Fatalf("scenario %q yielded %d ODs", *size, len(ods))
	}
	log.Printf("workload: %d distinct ODs (%s scenario), Zipf-skewed", len(ods), *size)

	hc := &http.Client{
		Timeout: 30 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        512,
			MaxIdleConnsPerHost: 512,
		},
	}

	art := artifact{GeneratedBy: "cpload", Size: *size}
	if *proof {
		art.Runs, art.Proof = runProof(hc, ods, *size, *seed, *proofDur)
	} else {
		w := newWorkload(ods, *seed)
		res := openLoop("open-loop", *addr, hc, w, *rate, *duration)
		report(res)
		art.Runs = []runResult{res}
	}

	if *jsonOut != "" {
		b, err := json.MarshalIndent(art, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*jsonOut, append(b, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", *jsonOut)
	}
}

func report(r runResult) {
	log.Printf("%s: %d requests @ %.0f/s — %d ok, %d shed, %d degraded, %d errors (budget %.3f)",
		r.Name, r.Total, r.RateRPS, r.OK, r.Shed, r.Degraded, r.Errors, r.ErrorBudget)
	log.Printf("%s: accepted p50/p99/p999 = %.1f/%.1f/%.1f ms; all p50/p99 = %.1f/%.1f ms; %.0f served/s",
		r.Name, r.AcceptedP50Ms, r.AcceptedP99Ms, r.AcceptedP999Ms, r.AllP50Ms, r.AllP99Ms, r.ThroughputRPS)
}

// serve boots h on a loopback listener and returns the base URL plus a
// drain function.
func serve(h http.Handler) (base string, drain func()) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: h}
	go func() { _ = hs.Serve(ln) }()
	return "http://" + ln.Addr().String(), func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = hs.Shutdown(ctx)
	}
}

// runProof demonstrates the overload-protection property end to end:
// a protected server at 2× its provisioned capacity sheds the excess with
// 429s while the p99 of accepted requests stays close to the uncontended
// p99 — instead of every caller's latency growing without bound.
//
// Capacity here is *provisioned* (the per-client rate limit), set with
// comfortable headroom below the machine's raw mixed-workload throughput.
// That keeps the proof deterministic across machines: accepted traffic is
// never CPU-bound, so the latency contrast measures the protection
// machinery, not the host's scheduler.
func runProof(hc *http.Client, ods []od, size string, seed int64, phase time.Duration) ([]runResult, *proofSummary) {
	cfg := core.DefaultScenarioConfig()
	if size == "small" {
		cfg = core.SmallScenarioConfig()
	}
	log.Printf("proof: building %s scenario...", size)
	scn := core.BuildScenario(cfg)

	// Stage 1: raw closed-loop throughput of the unprotected serving path,
	// measured on the real request mix (ingests invalidate hot route-cache
	// entries, so mixed capacity is well below a cached-recommend rate).
	rawBase, rawDrain := serve(server.New(scn.System).Handler())
	workers := runtime.GOMAXPROCS(0) * 4
	raw := calibrate(rawBase, hc, newWorkload(ods, seed), workers, phase/2)
	rawDrain()
	if raw <= 0 {
		log.Fatal("proof: calibration measured zero throughput")
	}

	// Provision at half the raw throughput, capped so the open-loop
	// generator can comfortably deliver 2× on any host.
	capacity := raw * 0.5
	if capacity > 300 {
		capacity = 300
	}
	if capacity < 20 {
		capacity = 20
	}
	log.Printf("proof: raw mixed throughput ≈ %.0f req/s; provisioning capacity %.0f req/s", raw, capacity)

	maxConc := runtime.GOMAXPROCS(0) * 4
	burst := capacity / 10
	if burst < 8 {
		burst = 8
	}
	srv := server.New(scn.System, server.WithOverload(server.OverloadConfig{
		MaxConcurrent:  maxConc,
		MaxQueue:       maxConc * 2,
		RatePerSec:     capacity,
		Burst:          burst,
		RequestTimeout: 10 * time.Second,
	}))
	base, drain := serve(srv.Handler())
	log.Printf("proof: protected server on %s (rate %.0f/s burst %.0f, max-concurrent %d, max-queue %d)",
		base, capacity, burst, maxConc, maxConc*2)

	baseline := openLoop("baseline-0.5x", base, hc, newWorkload(ods, seed+1), capacity*0.5, phase)
	report(baseline)
	overload := openLoop("overload-2x", base, hc, newWorkload(ods, seed+2), capacity*2, phase)
	report(overload)

	// Drain and account for leaks: the burst's goroutines must be gone.
	drain()
	time.Sleep(200 * time.Millisecond)
	runtime.GC()

	sum := &proofSummary{
		CapacityRPS:     capacity,
		GoroutinesAfter: runtime.NumGoroutine(),
	}
	if overload.Total > 0 {
		sum.ShedRatio = float64(overload.Shed) / float64(overload.Total)
	}
	if baseline.AcceptedP99Ms > 0 {
		sum.P99Ratio = overload.AcceptedP99Ms / baseline.AcceptedP99Ms
	}
	log.Printf("proof: shed ratio %.2f, accepted-p99 ratio %.2f, %d goroutines after drain",
		sum.ShedRatio, sum.P99Ratio, sum.GoroutinesAfter)
	return []runResult{baseline, overload}, sum
}
