// Command cpgen generates a synthetic scenario and writes its substrates to
// disk: the road network as JSON plus a summary of the generated corpus.
// Useful for inspecting the synthetic world or feeding the network into
// other tools.
//
// Usage:
//
//	cpgen -out ./scenario -cols 20 -rows 20 -seed 1
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"crowdplanner/internal/core"
)

func main() {
	var (
		out  = flag.String("out", "scenario", "output directory")
		cols = flag.Int("cols", 20, "city grid columns")
		rows = flag.Int("rows", 20, "city grid rows")
		seed = flag.Int64("seed", 1, "master seed")
	)
	flag.Parse()

	cfg := core.DefaultScenarioConfig()
	cfg.City.Cols, cfg.City.Rows = *cols, *rows
	cfg.City.Seed = *seed
	cfg.Population.Seed = *seed + 1
	cfg.Dataset.Seed = *seed + 2
	cfg.Landmarks.Seed = *seed + 3
	cfg.Checkins.Seed = *seed + 4
	cfg.Workers.Seed = *seed + 5

	scn := core.BuildScenario(cfg)

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	netPath := filepath.Join(*out, "roadnet.json")
	f, err := os.Create(netPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := scn.Graph.Write(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}

	type landmarkOut struct {
		ID           int32   `json:"id"`
		Name         string  `json:"name"`
		Kind         string  `json:"kind"`
		X            float64 `json:"x"`
		Y            float64 `json:"y"`
		Significance float64 `json:"significance"`
	}
	var lms []landmarkOut
	for _, l := range scn.Landmarks.All() {
		lms = append(lms, landmarkOut{
			ID: int32(l.ID), Name: l.Name, Kind: l.Kind.String(),
			X: l.Pt.X, Y: l.Pt.Y, Significance: l.Significance,
		})
	}
	lmPath := filepath.Join(*out, "landmarks.json")
	lf, err := os.Create(lmPath)
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(lf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(lms); err != nil {
		log.Fatal(err)
	}
	if err := lf.Close(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("scenario written to %s\n", *out)
	fmt.Printf("  road network: %d nodes, %d edges (%s)\n",
		scn.Graph.NumNodes(), scn.Graph.NumEdges(), netPath)
	fmt.Printf("  landmarks:    %d (%s)\n", scn.Landmarks.Len(), lmPath)
	fmt.Printf("  trajectories: %d trips by %d drivers\n", len(scn.Data.Trips), len(scn.Drivers))
	fmt.Printf("  workers:      %d\n", scn.Pool.Len())
}
