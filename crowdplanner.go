// Package crowdplanner is the public API of the CrowdPlanner reproduction —
// a crowd-based route recommendation system after Su, "CrowdPlanner: A
// Crowd-Based Route Recommendation System" (ICDE 2014, arXiv:1309.2687).
//
// CrowdPlanner consolidates candidate routes from web-service-style routing
// and popular-route mining (MPR, LDR, MFP) and, when the candidates
// disagree, generates a crowdsourcing task — a short sequence of binary
// landmark questions — assigns it to the most eligible workers, and returns
// the route the crowd certifies. Verified answers are stored as truths and
// reused.
//
// Quick start:
//
//	scn := crowdplanner.BuildScenario(crowdplanner.DefaultScenarioConfig())
//	resp, err := scn.System.Recommend(ctx, crowdplanner.Request{
//		From: 3, To: 317, Depart: crowdplanner.At(0, 8, 30),
//	})
//
// The context bounds the whole pipeline: cancellation or a deadline stops
// candidate fan-out and the crowd loop promptly.
//
// See examples/ for runnable programs, DESIGN.md for the architecture, and
// the client package for the typed SDK over the /v1 HTTP API.
package crowdplanner

import (
	"net/http"

	"crowdplanner/internal/core"
	"crowdplanner/internal/roadnet"
	"crowdplanner/internal/routing"
	"crowdplanner/internal/server"
	"crowdplanner/internal/store"
	"crowdplanner/internal/store/diskstore"
	"crowdplanner/internal/traj"
)

// Core request/response types, re-exported from the system core.
type (
	// System is a fully assembled CrowdPlanner instance.
	System = core.System
	// Config holds every system knob; start from DefaultConfig.
	Config = core.Config
	// Request is a route recommendation request.
	Request = core.Request
	// Response reports the recommended route and how it was resolved.
	Response = core.Response
	// Stage identifies which component resolved a request.
	Stage = core.Stage
	// Scenario is a generated synthetic world plus its system.
	Scenario = core.Scenario
	// ScenarioConfig bundles all substrate generation knobs.
	ScenarioConfig = core.ScenarioConfig
	// Oracle supplies the simulated ground-truth best route.
	Oracle = core.Oracle
	// PopulationOracle answers with the population-preferred route of the
	// driver simulation.
	PopulationOracle = core.PopulationOracle

	// NodeID identifies a road intersection.
	NodeID = roadnet.NodeID
	// Route is a path through the road network.
	Route = roadnet.Route
	// SimTime is a simulated departure time (minutes since Monday 00:00).
	SimTime = routing.SimTime

	// Trajectory is one recorded trip; pass map-matched trajectories to
	// System.IngestTrips to grow the live mining corpus.
	Trajectory = traj.Trajectory
	// IngestReport summarizes one System.IngestTrips batch.
	IngestReport = core.IngestReport
	// IngestRejection reports why one trip of a batch was refused.
	IngestRejection = core.IngestRejection

	// Store is the pluggable storage backend contract for the system's
	// mutable state (verified truths, worker histories/rewards, pending
	// crowd tasks). Set one on Config.Store; nil keeps state in memory.
	Store = store.Store
	// StoreStats are a backend's observability counters.
	StoreStats = store.Stats
	// DiskStore is the durable snapshot + write-ahead-log backend.
	DiskStore = diskstore.Store
)

// Resolution stages, in the order the control logic tries them.
const (
	StageReuse      = core.StageReuse
	StageAgreement  = core.StageAgreement
	StageConfidence = core.StageConfidence
	StageCrowd      = core.StageCrowd
	StageFallback   = core.StageFallback
)

// DefaultConfig returns the standard system configuration.
func DefaultConfig() Config { return core.DefaultConfig() }

// DefaultScenarioConfig describes the mid-size synthetic world used by the
// examples (400-intersection city, 300 drivers, 300 workers).
func DefaultScenarioConfig() ScenarioConfig { return core.DefaultScenarioConfig() }

// SmallScenarioConfig shrinks the world for fast experimentation.
func SmallScenarioConfig() ScenarioConfig { return core.SmallScenarioConfig() }

// BuildScenario deterministically generates a synthetic world (city,
// drivers, trajectories, landmarks, check-ins, workers) and assembles the
// system on top of it.
func BuildScenario(cfg ScenarioConfig) *Scenario { return core.BuildScenario(cfg) }

// NewSystem assembles a system over externally built substrates; most users
// want BuildScenario instead.
var NewSystem = core.New

// At constructs a SimTime from a day of week (0 = Monday) and a 24h clock.
func At(day, hour, minute int) SimTime { return routing.At(day, hour, minute) }

// OpenDiskStore opens (or creates) a durable snapshot+WAL store rooted at
// dir. Wire it into ScenarioConfig.System.Store before BuildScenario, then
// call System.LoadFromStore to replay persisted state; see
// examples/persistence.
func OpenDiskStore(dir string) (*DiskStore, error) { return diskstore.Open(dir) }

// NewHTTPHandler exposes a system over HTTP (see internal/server for the
// endpoint catalogue).
func NewHTTPHandler(sys *System) http.Handler { return server.New(sys).Handler() }
